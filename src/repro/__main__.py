"""Command-line driver: ``python -m repro <command>``.

Commands cover the everyday flows:

* ``table1`` — print the simple-datapath metrics table (paper Table 1);
* ``metrics`` — measure and print the DSP-core metrics table (Table 2);
* ``generate`` — run Phases 1–2 and print the Fig. 7-style program,
  optionally writing the test-vector file and golden MISR signature;
* ``grade`` — generate and fault-grade the self-test program;
* ``sweep`` — run the whole pipeline across a core-family design space
  and write the coverage/test-length/area landscape artifact
  (see :mod:`repro.harness.sweeps`);
* ``constraints`` — the Phase 3 control-bit constraint study (§3.4);
* ``lint`` — static analysis of netlists, self-test programs and
  campaign configurations (see :mod:`repro.lint`);
* ``testability`` — SCOAP/COP static testability report over the core
  and component netlists (see :mod:`repro.analysis.testability`);
* ``chaos`` — seeded fault-injection soak of the campaign runtime
  itself (see :mod:`repro.runtime.chaos`);
* ``serve`` / ``submit`` / ``status`` / ``cancel`` — the crash-safe
  campaign service: a persistent job queue with lease-based workers
  (see :mod:`repro.runtime.service`); ``serve --soak`` is the
  scheduler-level chaos soak and ``serve --soak --distributed`` the
  multi-worker transport soak (see :mod:`repro.runtime.worker`);
* ``worker`` — a remote campaign worker: connects to a serving
  scheduler over the length-prefixed frame transport
  (:mod:`repro.runtime.transport`), leases jobs, streams heartbeats
  and uploads results into the content-addressed artifact store;
* ``export-verilog`` — write the flat gate-level core as Verilog.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

#: ``serve --soak --inject`` default; ``--distributed`` swaps in the
#: transport-aware class list when the user did not pick their own.
_SOAK_INJECT_DEFAULT = ("kill,scheduler_crash,lease_lost,"
                        "heartbeat_delay,queue_torn_write")


def _cmd_table1(args) -> int:
    from repro.metrics.simple_metrics import build_table1, render_table1
    table = build_table1(n_samples=args.samples, n_good=args.good)
    print(render_table1(table))
    return 0


def _measure_or_load(args):
    """The metrics table — loaded from ``--table`` when given."""
    if getattr(args, "table", None):
        from repro.metrics.io import load_table
        return load_table(args.table)
    from repro.metrics.table import build_metrics_table
    table = build_metrics_table(
        n_controllability_samples=args.samples,
        n_observability_good=args.good,
    )
    if getattr(args, "save_table", None):
        from repro.metrics.io import save_table
        save_table(table, args.save_table)
        print(f"saved metrics table to {args.save_table}")
    return table


def _cmd_metrics(args) -> int:
    table = _measure_or_load(args)
    print(table.render(max_columns=args.columns))
    return 0


def _build_selftest(args):
    from repro.selftest.generator import SelfTestGenerator
    return SelfTestGenerator(table=_measure_or_load(args)).generate()


def _cmd_generate(args) -> int:
    from repro.selftest.vectors import expand_program, run_with_misr
    selftest = _build_selftest(args)
    print(selftest.phase1.summary())
    print(selftest.phase2.summary())
    print()
    print(selftest.program.render())
    words = expand_program(selftest.program, args.iterations)
    golden = run_with_misr(words)
    print(f"\n{golden.n_vectors} vectors over {args.iterations} iterations; "
          f"golden MISR signature 0x{golden.signature:02x}")
    if args.vectors:
        from repro.selftest.export import write_vector_file
        n = write_vector_file(args.vectors, words)
        print(f"wrote {n} vector lines to {args.vectors}")
    return 0


def _print_timings(timings) -> None:
    from repro.harness.reporting import format_table
    rows = [
        (name, entry["calls"], f"{entry['seconds']:.3f}")
        for name, entry in sorted(
            timings.items(), key=lambda kv: -kv[1]["seconds"])
    ]
    print("per-phase timings:")
    print(format_table(("section", "calls", "seconds"), rows))


def _export_trace(session, args) -> None:
    """Write the armed session's trace file(s) and a summary line."""
    if getattr(args, "trace", None):
        n = session.tracer.write_jsonl(args.trace)
        print(f"trace: {n} spans -> {args.trace}")
    if getattr(args, "chrome", None):
        n = session.tracer.write_chrome(args.chrome)
        print(f"chrome trace: {n} events -> {args.chrome}")


def _cmd_grade(args) -> int:
    from repro import obs
    from repro.runtime.campaigns import HierarchicalCampaign
    from repro.selftest.vectors import expand_program

    session = None
    if args.trace or args.chrome:
        session = obs.configure(seed=2004)
    try:
        selftest = _build_selftest(args)
        words = expand_program(selftest.program, args.iterations)
        action = "resuming" if args.resume else "grading"
        print(f"{action} {len(words)} vectors ...")
        campaign = HierarchicalCampaign(
            words,
            checkpoint=args.checkpoint,
            unit_timeout=args.unit_timeout,
            jobs=args.jobs,
            engine=args.engine,
        )
        outcome = campaign.run(resume=args.resume, max_units=args.max_units,
                               force=args.force)
        if session is not None:
            _export_trace(session, args)
            if outcome.report.timings:
                _print_timings(outcome.report.timings)
        if outcome.report.interrupted:
            print(f"campaign interrupted: {outcome.report.summary()}")
            print("re-run with --resume to finish the remaining units")
            return 3
        report = outcome.result.coverage_report("self test")
        print(report)
        print(f"campaign: {outcome.report.summary()}")
        print(f"test time at 500 MHz: "
              f"{report.test_time_seconds() * 1e3:.3f} ms")
        return 0
    finally:
        if session is not None:
            obs.disable()


def _cmd_sweep(args) -> int:
    import json

    from repro import obs
    from repro.harness.sweeps import (
        SweepConfig,
        quick_factorial,
        record_sweep,
        run_sweep,
        sampled_specs,
    )

    session = None
    if args.trace or args.chrome:
        session = obs.configure(seed=args.seed)
    try:
        if args.sample:
            specs = sampled_specs(args.sample, seed=args.seed)
        else:
            specs = quick_factorial()
        config = SweepConfig(
            specs=specs,
            n_controllability_samples=args.samples,
            n_observability_good=args.good,
            seed=args.seed,
            n_iterations=args.iterations,
            engine=args.engine,
        )
        print(f"sweeping {len(specs)} design points ...")

        def progress(label, record):
            if record.get("interrupted"):
                print(f"  {label}: interrupted in {record['stage']} stage")
            else:
                print(f"  {label}: area={record['area']} "
                      f"coverage={record['fault_coverage']:.2%} "
                      f"vectors={record['n_vectors']}")

        doc = run_sweep(
            config, checkpoint_dir=args.checkpoint_dir, jobs=args.jobs,
            unit_timeout=args.unit_timeout, resume=args.resume,
            max_units=args.max_units, progress=progress,
        )
        if session is not None:
            _export_trace(session, args)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"landscape artifact -> {args.out}")
        if doc["interrupted"]:
            print("sweep interrupted: re-run with --resume to finish")
            return 3
        record_sweep(doc)
        return 0
    finally:
        if session is not None:
            obs.disable()


def _cmd_trace(args) -> int:
    """``repro trace <campaign>``: run a small campaign with tracing on
    (``grade``/``metrics``) or validate an existing trace (``check``)."""
    from repro import obs

    if args.campaign == "check":
        from repro.obs.schema import validate_trace_file
        from repro.runtime.errors import ConfigError
        if not args.file:
            raise ConfigError("trace check requires a trace file argument")
        counts, errors = validate_trace_file(args.file)
        print(f"{args.file}: {counts['spans']} spans, "
              f"{counts['points']} points")
        if errors:
            for error in errors[:20]:
                print(f"  schema error: {error}", file=sys.stderr)
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more",
                      file=sys.stderr)
            return 1
        print("schema: OK")
        return 0

    if args.file:
        from repro.runtime.errors import ConfigError
        raise ConfigError(
            f"trace {args.campaign} takes no file argument "
            f"(use --trace to choose the output path)")

    session = obs.configure(seed=2004)
    try:
        if args.campaign == "grade":
            from repro.runtime.campaigns import HierarchicalCampaign
            from repro.selftest.vectors import expand_program
            selftest = _build_selftest(args)
            words = expand_program(selftest.program, args.iterations)
            campaign = HierarchicalCampaign(words, jobs=args.jobs)
            outcome = campaign.run()
        else:  # metrics
            from repro.runtime.campaigns import MetricsCampaign
            campaign = MetricsCampaign(
                n_controllability_samples=args.samples,
                n_observability_good=args.good,
                jobs=args.jobs,
            )
            outcome = campaign.run()
        print(f"campaign: {outcome.report.summary()}")
        _export_trace(session, args)
        if outcome.report.timings:
            _print_timings(outcome.report.timings)
        return 0
    finally:
        obs.disable()


def _cmd_profile(args) -> int:
    """``repro profile``: per-phase / per-simulator timing breakdown of
    the generate → grade flow."""
    from repro import obs
    from repro.harness.reporting import format_table
    from repro.runtime.campaigns import HierarchicalCampaign
    from repro.selftest.vectors import expand_program

    session = obs.configure(trace=False, metrics=True, profile=True,
                            seed=2004)
    try:
        selftest = _build_selftest(args)
        words = expand_program(selftest.program, args.iterations)
        campaign = HierarchicalCampaign(words, jobs=args.jobs,
                                        engine=args.engine)
        campaign.run()
        rows = [
            (name, calls, f"{seconds:.3f}", f"{mean_ms:.2f}")
            for name, calls, seconds, mean_ms in session.profiler.rows()
        ]
        print(format_table(("section", "calls", "seconds", "mean ms"),
                           rows))
        counters = session.registry.snapshot()["counters"] \
            if session.registry is not None else {}
        cache_lines = {k: v for k, v in sorted(counters.items())
                       if k.startswith("cache.")}
        if cache_lines:
            print("cache counters:")
            for name, value in cache_lines.items():
                print(f"  {name:<24}{value}")
        return 0
    finally:
        obs.disable()


def _cmd_chaos(args) -> int:
    import json as _json
    from repro.runtime.chaos import parse_classes, run_soak
    classes = parse_classes(args.inject)

    def progress(outcome):
        status = "ok" if outcome.ok() else \
            f"{len(outcome.violations)} VIOLATIONS"
        print(f"  campaign {outcome.index:3d} seed {outcome.seed}: "
              f"{outcome.crashes} crashes, {outcome.resumes} resumes "
              f"[{status}]")

    print(f"chaos soak: {args.campaigns} campaigns x {args.units} units, "
          f"seed {args.seed}, injecting {','.join(classes)}")
    report = run_soak(
        seed=args.seed, campaigns=args.campaigns, n_units=args.units,
        classes=classes, probability=args.probability,
        max_per_class=args.max_per_class, jobs=args.jobs,
        scratch=args.scratch,
        progress=progress if args.verbose else None,
    )
    print(report.summary())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            _json.dump(report.to_json(), handle, indent=2)
            handle.write("\n")
        print(f"wrote soak report to {args.report}")
    if not report.ok():
        for campaign in report.campaigns:
            for violation in campaign.violations:
                print(f"VIOLATION campaign {campaign.index} "
                      f"(seed {campaign.seed}): {violation.describe()}",
                      file=sys.stderr)
        return 1
    return 0


def _service_soak(args) -> int:
    import json as _json
    from repro.runtime.chaos import parse_classes
    from repro.runtime.errors import ConfigError
    from repro.runtime.service import run_service_soak

    if args.seed is None:
        raise ConfigError("serve --soak requires --seed")
    classes = parse_classes(args.inject)
    print(f"service soak: {args.campaigns} campaigns x {args.units} "
          f"units, seed {args.seed}, injecting {','.join(classes)}")
    report = run_service_soak(
        seed=args.seed, campaigns=args.campaigns, n_units=args.units,
        classes=classes, probability=args.probability,
        max_per_class=args.max_per_class, scratch=args.scratch,
        progress=print if args.verbose else None,
    )
    print(report.summary())
    print(f"disruptions (crashes + reclaims): {report.n_disruptions}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            _json.dump(report.to_json(), handle, indent=2)
            handle.write("\n")
        print(f"wrote service soak report to {args.report}")
    if not report.ok():
        for violation in report.violations:
            print(f"VIOLATION: {violation.describe()}", file=sys.stderr)
        return 1
    return 0


def _distributed_soak(args) -> int:
    import json as _json
    from repro.runtime.chaos import DISTRIBUTED_SOAK_CLASSES, parse_classes
    from repro.runtime.errors import ConfigError
    from repro.runtime.worker import run_distributed_soak

    if args.seed is None:
        raise ConfigError("serve --soak requires --seed")
    inject = args.inject
    if inject == _SOAK_INJECT_DEFAULT:
        inject = ",".join(DISTRIBUTED_SOAK_CLASSES)
    classes = parse_classes(inject)
    print(f"distributed soak: {args.campaigns} campaigns x "
          f"{args.units} units over {args.workers} workers, "
          f"seed {args.seed}, injecting {','.join(classes)}")
    report = run_distributed_soak(
        seed=args.seed, campaigns=args.campaigns, n_units=args.units,
        workers=args.workers, classes=classes,
        probability=args.probability, max_per_class=args.max_per_class,
        scratch=args.scratch,
        progress=print if args.verbose else None,
    )
    print(report.summary())
    print(f"disruptions (scheduler crashes + host losses + reclaims): "
          f"{report.n_disruptions}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            _json.dump(report.to_json(), handle, indent=2)
            handle.write("\n")
        print(f"wrote distributed soak report to {args.report}")
    if not report.ok():
        for violation in report.violations:
            print(f"VIOLATION: {violation.describe()}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import signal
    from repro.runtime.errors import ConfigError
    from repro.runtime.service import (
        SchedulerService,
        ServiceConfig,
        serve_until_drained,
    )

    if args.soak:
        if args.distributed:
            return _distributed_soak(args)
        return _service_soak(args)
    if args.distributed:
        raise ConfigError("--distributed only applies to serve --soak")
    if not args.journal:
        raise ConfigError("serve requires --journal (or --soak)")
    if args.remote_only and not args.listen:
        raise ConfigError("serve --remote-only requires --listen "
                          "(a pure scheduler with no transport would "
                          "never run anything)")

    config = ServiceConfig(
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat_interval,
        max_job_retries=args.max_job_retries,
    )
    service = SchedulerService(args.journal, config=config)
    server = None
    store = None
    if args.listen:
        from repro.runtime.artifacts import ArtifactStore
        from repro.runtime.transport import (
            SchedulerEndpoint,
            TransportServer,
        )
        artifact_root = args.artifacts or args.journal + ".artifacts"
        store = ArtifactStore(artifact_root)
        endpoint = SchedulerEndpoint(service, artifacts=store)
        server = TransportServer(endpoint, args.listen)

    def on_sigterm(signum, frame):
        # Only a flag flip here: journal appends from inside a signal
        # handler could interleave with an append already in flight.
        # serve_until_drained journals the drain AND pushes a drain
        # frame to every connected remote worker.
        service.request_drain()

    previous = signal.signal(signal.SIGTERM, on_sigterm)
    try:
        print(f"serving {args.journal} (epoch {service.epoch}, "
              f"{service.queue_depth()} jobs queued)")
        if server is not None:
            print(f"listening on {server.address} "
                  f"(artifacts: {store.root})")
        outcome = serve_until_drained(
            service, poll_seconds=args.poll,
            idle_exit=not args.no_idle_exit,
            server=server,
            local_worker=not args.remote_only,
        )
        rows = service.status_rows()
        done = sum(1 for r in rows if r["status"] == "done")
        print(f"serve: {outcome} ({done}/{len(rows)} jobs done)")
        return 0
    finally:
        signal.signal(signal.SIGTERM, previous)
        if server is not None:
            server.stop()
        if store is not None:
            store.close()
        service.close()


def _cmd_worker(args) -> int:
    from repro.runtime.transport import RetryPolicy
    from repro.runtime.worker import run_worker

    policy = RetryPolicy(
        max_attempts=args.rpc_retries,
        rpc_timeout=args.rpc_timeout,
        deadline=args.rpc_deadline,
    )
    policy.validate()
    outcome = run_worker(
        args.connect,
        worker_id=args.id,
        policy=policy,
        reconnect_seconds=args.reconnect,
        max_idle=args.max_idle,
        poll_seconds=args.poll,
        seed=args.seed,
        progress=print if args.verbose else None,
    )
    counts = outcome["outcomes"]
    print(f"worker {outcome['worker']}: {outcome['status']} "
          f"({sum(counts.values())} jobs: {counts})")
    # "drained" and "idle" are orderly exits; losing the scheduler for
    # longer than --reconnect is an error the supervisor should see.
    return 0 if outcome["status"] in ("drained", "idle") else 1


def _cmd_submit(args) -> int:
    import os as _os
    from repro.runtime.queue import JobJournal
    from repro.runtime.service import JOB_KINDS, JobSpec

    checkpoint = args.checkpoint
    if checkpoint is None:
        checkpoint = _os.path.join(args.journal + ".jobs",
                                   f"{args.job}.jsonl")
        _os.makedirs(_os.path.dirname(checkpoint), exist_ok=True)
    params = {}
    if args.unit_seconds:
        params["unit_seconds"] = args.unit_seconds
    spec = JobSpec(job_id=args.job, kind=args.kind, seed=args.seed,
                   n_units=args.units, checkpoint=checkpoint,
                   params=params)
    if spec.kind not in JOB_KINDS:
        from repro.runtime.errors import ConfigError
        raise ConfigError(f"unknown job kind {spec.kind!r}")
    path = JobJournal(args.journal).spool_request(
        {"op": "submit", "spec": spec.to_json()}, name=f"{args.job}.json")
    print(f"spooled submit of job {args.job!r} -> {path}")
    return 0


def _cmd_cancel(args) -> int:
    from repro.runtime.queue import JobJournal
    path = JobJournal(args.journal).spool_request(
        {"op": "cancel", "job": args.job},
        name=f"{args.job}.cancel.json")
    print(f"spooled cancel of job {args.job!r} -> {path}")
    return 0


def _cmd_status(args) -> int:
    import json as _json
    from repro.harness.reporting import format_table
    from repro.runtime.service import journal_status, verify_journal
    from repro.runtime.transport import journal_worker_rows

    rows = journal_status(args.journal)
    worker_rows = journal_worker_rows(args.journal) \
        if args.workers else []
    violations = verify_journal(
        args.journal, require_terminal=args.require_terminal) \
        if args.verify else []
    if args.json:
        doc = {
            "jobs": rows,
            "violations": [v.to_json() for v in violations],
        }
        if args.workers:
            doc["workers"] = worker_rows
        print(_json.dumps(doc, indent=2))
    else:
        columns = ("job", "kind", "status", "attempts", "failures",
                   "reclaims", "fenced", "units_ok", "units_degraded",
                   "units_quarantined", "units_retried",
                   "leaked_threads")
        print(format_table(
            columns, [tuple(r[c] for c in columns) for r in rows]))
        terminal = sum(1 for r in rows if r["status"] in
                       ("done", "quarantined", "cancelled"))
        print(f"{len(rows)} jobs, {terminal} terminal")
        if args.workers:
            wcolumns = ("worker", "host", "pid", "registrations",
                        "leases", "done", "failed", "released",
                        "fenced", "reclaimed", "last_seen_age")
            print(f"\n{len(worker_rows)} worker(s) seen:")
            print(format_table(wcolumns, [
                tuple(r[c] for c in wcolumns) for r in worker_rows]))
    if args.verify:
        for violation in violations:
            print(f"VIOLATION: {violation.describe()}", file=sys.stderr)
        if violations:
            return 1
        if not args.json:
            print("service invariants: OK")
    return 0


def _cmd_constraints(args) -> int:
    from repro.selftest.phase3 import constraint_study, discardable_modes
    results = constraint_study(args.component, n_patterns=args.patterns)
    for result in results:
        print(result.describe())
    modes = discardable_modes(results)
    print("discardable modes:", modes if modes else "none")
    return 0


def _cmd_isa(args) -> int:
    from repro.dsp.isa import render_opcode_table
    print(render_opcode_table())
    return 0


def _cmd_core_report(args) -> int:
    from repro.dsp.gatelevel import make_gatelevel_core
    from repro.logic.analysis import (
        fanout_histogram,
        logic_depth,
        region_inventory,
    )
    netlist = make_gatelevel_core()
    print(netlist.stats())
    depth = logic_depth(netlist)
    print(f"logic depth: max {depth.max_depth}, "
          f"mean over sinks {depth.mean_output_depth:.1f}")
    print("fanout histogram:", fanout_histogram(netlist))
    print("gates per component region:")
    for region, count in sorted(region_inventory(netlist).items()):
        print(f"  {region:<14}{count}")
    return 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import run_lint
    return run_lint(args)


def _cmd_testability(args) -> int:
    import json as _json
    from repro import obs
    from repro.analysis import analyze_testability, summarize_testability
    from repro.analysis.testability import DEFAULT_DETECT_FLOOR, DEFAULT_SEQ_COST
    from repro.dsp.components import COMPONENTS
    from repro.dsp.gatelevel import make_gatelevel_core
    from repro.faults.model import collapse_faults
    from repro.harness.reporting import format_table
    from repro.runtime.errors import ConfigError

    floor = args.floor if args.floor is not None else DEFAULT_DETECT_FLOOR
    seq_cost = args.seq_cost if args.seq_cost is not None \
        else DEFAULT_SEQ_COST
    if floor <= 0.0:
        raise ConfigError(f"--floor must be a positive probability, "
                          f"got {floor}")
    if seq_cost < 0.0:
        raise ConfigError(f"--seq-cost must be non-negative, got {seq_cost}")
    session = obs.configure(trace=False, metrics=True, profile=True,
                            seed=2004) if args.profile else None
    try:
        targets = []
        if args.target in ("components", "all"):
            targets.extend(
                (spec.name, spec.factory) for spec in COMPONENTS
                if spec.factory is not None
            )
        if args.target in ("core", "all"):
            targets.append(("core", make_gatelevel_core))
        summaries = []
        for name, factory in targets:
            netlist = factory()
            analysis = analyze_testability(netlist, seq_cost=seq_cost)
            faults = collapse_faults(netlist).faults
            summaries.append(summarize_testability(
                name, netlist, faults, analysis=analysis, floor=floor))
        headers = ("component", "faults", "maxCC", "medCC", "maxCO",
                   "medCO", "med p(det)", "min p(det)", "<floor",
                   "unbounded")
        print(format_table(headers, [s.to_row() for s in summaries]))
        predicted = sum(s.n_below_floor for s in summaries)
        untestable = sum(s.n_unbounded for s in summaries)
        print(f"{len(summaries)} netlists: {predicted} predicted "
              f"random-resistant fault site(s) below floor {floor:.0e}, "
              f"{untestable} statically untestable candidate(s)")
        if args.json:
            counters = {}
            if session is not None and session.registry is not None:
                counters = {
                    k: v for k, v in
                    session.registry.snapshot()["counters"].items()
                    if k.startswith("analysis.testability.")
                }
            doc = {
                "schema": "repro.testability/1",
                "floor": floor,
                "seq_cost": seq_cost,
                "components": [s.to_json() for s in summaries],
                "counters": counters,
            }
            with open(args.json, "w", encoding="utf-8") as handle:
                _json.dump(doc, handle, indent=2)
                handle.write("\n")
            print(f"wrote testability report to {args.json}")
        if session is not None:
            rows = [
                (name, calls, f"{seconds:.3f}", f"{mean_ms:.2f}")
                for name, calls, seconds, mean_ms in
                session.profiler.rows()
                if name.startswith("analysis.")
            ]
            if rows:
                print(format_table(
                    ("section", "calls", "seconds", "mean ms"), rows))
        return 0
    finally:
        if session is not None:
            obs.disable()


def _cmd_export_verilog(args) -> int:
    from repro.dsp.gatelevel import make_gatelevel_core
    from repro.logic.export import to_verilog
    netlist = make_gatelevel_core()
    source = to_verilog(netlist, "dsp_core")
    with open(args.output, "w") as handle:
        handle.write(source)
    print(f"wrote {netlist.stats()} to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Self-test program generation for the embedded DSP "
                    "core (DATE 2004 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="print the Table 1 metrics")
    p.add_argument("--samples", type=int, default=400)
    p.add_argument("--good", type=int, default=30)
    p.set_defaults(func=_cmd_table1)

    def add_table_options(p_):
        p_.add_argument("--table", metavar="FILE",
                        help="load a previously saved metrics table")
        p_.add_argument("--save-table", metavar="FILE",
                        help="save the measured metrics table")

    def add_campaign_options(p_):
        p_.add_argument("--checkpoint", metavar="FILE",
                        help="JSONL checkpoint file for the fault-grading "
                             "campaign (written as units complete)")
        p_.add_argument("--resume", action="store_true",
                        help="skip units already recorded in --checkpoint")
        p_.add_argument("--unit-timeout", type=float, metavar="SECONDS",
                        help="wall-clock budget per grading unit; "
                             "repeated timeouts degrade to behavioural "
                             "simulation")
        p_.add_argument("--jobs", metavar="N",
                        help="worker processes for the campaign (an "
                             "integer or 'auto'; default: $REPRO_JOBS "
                             "or 1, the serial backend)")
        p_.add_argument("--max-units", type=int, metavar="N",
                        help="stop after N grading units (checkpoint "
                             "the rest for a later --resume)")
        p_.add_argument("--force", action="store_true",
                        help="resume even if the checkpoint fingerprint "
                             "does not match the campaign")

    p = sub.add_parser("metrics", help="print the Table 2 metrics")
    p.add_argument("--samples", type=int, default=150)
    p.add_argument("--good", type=int, default=8)
    p.add_argument("--columns", type=int, default=9,
                   help="columns to print (the table is wide)")
    add_table_options(p)
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser("generate",
                       help="generate and print the self-test program")
    p.add_argument("--samples", type=int, default=100)
    p.add_argument("--good", type=int, default=6)
    p.add_argument("--iterations", type=int, default=100)
    p.add_argument("--vectors", metavar="FILE",
                   help="also write the expanded vector file")
    add_table_options(p)
    p.set_defaults(func=_cmd_generate)

    def add_trace_options(p_):
        p_.add_argument("--trace", metavar="FILE",
                        help="write a JSONL span trace of the campaign "
                             "(schema repro.trace/1; includes every "
                             "worker process under --jobs)")
        p_.add_argument("--chrome", metavar="FILE",
                        help="also write a Chrome trace-event JSON "
                             "(load in chrome://tracing or Perfetto)")

    p = sub.add_parser("grade",
                       help="generate and fault-grade the self-test")
    p.add_argument("--samples", type=int, default=100)
    p.add_argument("--good", type=int, default=6)
    p.add_argument("--iterations", type=int, default=100)
    p.add_argument("--engine", choices=("interpreted", "batched"),
                   default="interpreted",
                   help="component fault-propagation engine: the "
                        "interpreted per-gate walk, or batched compiled "
                        "cone kernels (bit-identical grades, several "
                        "times faster; default interpreted)")
    add_table_options(p)
    add_campaign_options(p)
    add_trace_options(p)
    p.set_defaults(func=_cmd_grade)

    p = sub.add_parser("sweep",
                       help="run the self-test pipeline across a core-"
                            "family design space (landscape artifact)")
    p.add_argument("--sample", type=int, metavar="N",
                   help="sweep N randomly sampled design points "
                        "(default: the 4-point shifter x adder factorial)")
    p.add_argument("--samples", type=int, default=20,
                   help="controllability samples per variant per point")
    p.add_argument("--good", type=int, default=2,
                   help="observability good-machine runs per point")
    p.add_argument("--iterations", type=int, default=2,
                   help="program-loop expansions per point")
    p.add_argument("--seed", type=int, default=2004)
    p.add_argument("--engine", choices=("interpreted", "batched"),
                   default="interpreted",
                   help="fault-propagation engine for the main grading "
                        "campaign (the per-point parity check always "
                        "runs both)")
    p.add_argument("--out", default="sweep.json", metavar="FILE",
                   help="landscape artifact path (schema repro.sweep/1)")
    p.add_argument("--checkpoint-dir", metavar="DIR",
                   help="directory for per-point campaign checkpoints "
                        "and finished-point results (enables --resume)")
    p.add_argument("--resume", action="store_true",
                   help="reload finished points and resume interrupted "
                        "campaigns from --checkpoint-dir")
    p.add_argument("--unit-timeout", type=float, metavar="SECONDS")
    p.add_argument("--jobs", metavar="N",
                   help="worker processes per campaign")
    p.add_argument("--max-units", type=int, metavar="N",
                   help="stop the current point's campaign after N "
                        "units (checkpoint the rest)")
    add_trace_options(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("trace",
                       help="trace a campaign (grade/metrics) or "
                            "validate an existing trace file (check)")
    p.add_argument("campaign", choices=("grade", "metrics", "check"),
                   help="campaign to trace, or 'check' to validate")
    p.add_argument("file", nargs="?",
                   help="trace file to validate (check only)")
    p.add_argument("--samples", type=int, default=20)
    p.add_argument("--good", type=int, default=2)
    p.add_argument("--iterations", type=int, default=2)
    p.add_argument("--jobs", metavar="N",
                   help="worker processes (integer or 'auto')")
    p.add_argument("--trace", metavar="FILE", default="trace.jsonl",
                   help="JSONL trace output path (default trace.jsonl)")
    p.add_argument("--chrome", metavar="FILE",
                   help="also write a Chrome trace-event JSON")
    add_table_options(p)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("profile",
                       help="per-phase / per-simulator timing breakdown "
                            "of the generate -> grade flow")
    p.add_argument("--samples", type=int, default=20)
    p.add_argument("--good", type=int, default=2)
    p.add_argument("--iterations", type=int, default=2)
    p.add_argument("--jobs", metavar="N",
                   help="worker processes (integer or 'auto')")
    p.add_argument("--engine", choices=("interpreted", "batched"),
                   default="interpreted",
                   help="component fault-propagation engine to profile")
    add_table_options(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("chaos",
                       help="seeded fault-injection soak of the campaign "
                            "runtime (exits nonzero on any invariant "
                            "violation)")
    p.add_argument("--seed", type=int, required=True,
                   help="master seed for the failure schedule (each "
                        "campaign derives its own)")
    p.add_argument("--campaigns", type=int, default=50, metavar="K",
                   help="chaos campaigns to run (default 50)")
    p.add_argument("--units", type=int, default=12, metavar="N",
                   help="work units per campaign (default 12)")
    p.add_argument("--inject",
                   default="kill,torn,io,hang,corrupt,truncate,duplicate",
                   metavar="CLASSES",
                   help="comma-separated failure classes, or 'all'")
    p.add_argument("--probability", type=float, default=0.25,
                   help="repeat-injection probability in [0, 1)")
    p.add_argument("--max-per-class", type=int, default=2, metavar="N",
                   help="injection budget per class per campaign")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes per chaos campaign")
    p.add_argument("--scratch", metavar="DIR",
                   help="scratch directory for chaos checkpoints "
                        "(default: a private temp dir, removed after)")
    p.add_argument("--report", metavar="FILE",
                   help="write the JSON soak report here")
    p.add_argument("--verbose", action="store_true",
                   help="print one line per campaign")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser("serve",
                       help="run the crash-safe campaign scheduler over "
                            "a persistent job journal (--soak: chaos-"
                            "soak the scheduler itself)")
    p.add_argument("--journal", metavar="FILE",
                   help="the service's job journal (created if missing; "
                        "an existing journal is replayed to recover)")
    p.add_argument("--lease-ttl", type=float, default=30.0,
                   metavar="SECONDS",
                   help="lease time-to-live; an unrenewed lease is "
                        "reclaimed after this long (default 30)")
    p.add_argument("--heartbeat-interval", type=float, default=5.0,
                   metavar="SECONDS",
                   help="intended renewal cadence (default 5; must be "
                        "well under --lease-ttl, see lint CMP005)")
    p.add_argument("--max-job-retries", type=int, default=3, metavar="N",
                   help="failed attempts before a job is quarantined "
                        "as poison (default 3)")
    p.add_argument("--poll", type=float, default=0.2, metavar="SECONDS",
                   help="idle polling interval (default 0.2)")
    p.add_argument("--no-idle-exit", action="store_true",
                   help="keep serving after every job is terminal "
                        "(wait for more submissions)")
    p.add_argument("--listen", metavar="ADDR",
                   help="also accept remote workers over the frame "
                        "transport: HOST:PORT for TCP (port 0 picks a "
                        "free one) or unix:/path for a UNIX socket")
    p.add_argument("--artifacts", metavar="DIR",
                   help="content-addressed result store for remote "
                        "uploads (default: <journal>.artifacts)")
    p.add_argument("--remote-only", action="store_true",
                   help="run no local worker; remote workers (repro "
                        "worker --connect) do all the work "
                        "(requires --listen)")
    p.add_argument("--soak", action="store_true",
                   help="run the scheduler chaos soak instead of a "
                        "real service (deterministic, virtual-clock)")
    p.add_argument("--distributed", action="store_true",
                   help="soak: soak the multi-worker transport tier "
                        "instead (partitions, duplicated/reordered "
                        "frames, worker host losses, golden-twin "
                        "audit of every campaign)")
    p.add_argument("--workers", type=int, default=3, metavar="N",
                   help="distributed soak: remote workers (default 3)")
    p.add_argument("--seed", type=int,
                   help="soak: master seed for the failure schedule")
    p.add_argument("--campaigns", type=int, default=25, metavar="K",
                   help="soak: service campaigns to run (default 25)")
    p.add_argument("--units", type=int, default=8, metavar="N",
                   help="soak: work units per campaign (default 8)")
    p.add_argument("--inject",
                   default=_SOAK_INJECT_DEFAULT,
                   metavar="CLASSES",
                   help="soak: comma-separated failure classes "
                        "(--distributed defaults to the transport-"
                        "aware class list)")
    p.add_argument("--probability", type=float, default=0.4,
                   help="soak: repeat-injection probability in [0, 1)")
    p.add_argument("--max-per-class", type=int, default=None,
                   metavar="N",
                   help="soak: injection budget per class (default: "
                        "scales with --campaigns)")
    p.add_argument("--scratch", metavar="DIR",
                   help="soak: scratch directory (default: private "
                        "temp dir, removed after)")
    p.add_argument("--report", metavar="FILE",
                   help="soak: write the JSON soak report here")
    p.add_argument("--verbose", action="store_true",
                   help="soak: print per-event progress")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("worker",
                       help="connect to a serving scheduler over the "
                            "frame transport and run leased jobs "
                            "until drained")
    p.add_argument("--connect", required=True, metavar="ADDR",
                   help="scheduler address: HOST:PORT or unix:/path "
                        "(must match the scheduler's --listen)")
    p.add_argument("--id", metavar="NAME",
                   help="stable worker id (default: <hostname>-<pid>)")
    p.add_argument("--reconnect", type=float, default=60.0,
                   metavar="SECONDS",
                   help="keep retrying a dead scheduler this long "
                        "before giving up (default 60; rides out a "
                        "kill -9 + restart)")
    p.add_argument("--max-idle", type=int, default=None, metavar="N",
                   help="exit after N consecutive empty lease polls "
                        "(default: wait forever for work)")
    p.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                   help="idle/reconnect polling interval (default 0.5)")
    p.add_argument("--rpc-timeout", type=float, default=5.0,
                   metavar="SECONDS",
                   help="per-RPC socket timeout (default 5)")
    p.add_argument("--rpc-retries", type=int, default=5, metavar="N",
                   help="attempts per RPC before the call fails "
                        "(default 5, exponential backoff + jitter)")
    p.add_argument("--rpc-deadline", type=float, default=30.0,
                   metavar="SECONDS",
                   help="overall deadline across one RPC's retries "
                        "(default 30)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for retry jitter (deterministic tests)")
    p.add_argument("--verbose", action="store_true",
                   help="print per-job progress lines")
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser("submit",
                       help="spool one campaign job for a running (or "
                            "future) scheduler to ingest")
    p.add_argument("--journal", required=True, metavar="FILE",
                   help="the target service's job journal path")
    p.add_argument("--job", required=True, metavar="ID",
                   help="job id (submission is idempotent per id)")
    p.add_argument("--kind", default="soak",
                   choices=("soak", "grade"),
                   help="workload kind (default soak)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--units", type=int, default=8, metavar="N",
                   help="work units in the campaign (default 8)")
    p.add_argument("--checkpoint", metavar="FILE",
                   help="campaign checkpoint path (default: "
                        "<journal>.jobs/<job>.jsonl)")
    p.add_argument("--unit-seconds", type=float, default=0.0,
                   metavar="S",
                   help="sleep per unit (lets tests kill the scheduler "
                        "mid-campaign)")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("status",
                       help="per-job service status (read-only; safe "
                            "while a scheduler is live)")
    p.add_argument("--journal", required=True, metavar="FILE")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output")
    p.add_argument("--verify", action="store_true",
                   help="also audit the journal's scheduler invariants "
                        "(exit 1 on any violation)")
    p.add_argument("--require-terminal", action="store_true",
                   help="with --verify: a non-terminal job is a "
                        "violation (for finished soaks)")
    p.add_argument("--workers", action="store_true",
                   help="also print per-worker transport health "
                        "(registrations, leases, fenced writes, "
                        "last-heartbeat age) replayed from the journal")
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser("cancel",
                       help="spool a cancellation for one job")
    p.add_argument("--journal", required=True, metavar="FILE")
    p.add_argument("--job", required=True, metavar="ID")
    p.set_defaults(func=_cmd_cancel)

    p = sub.add_parser("constraints",
                       help="control-bit constraint study (Phase 3)")
    p.add_argument("--component", default="shifter")
    p.add_argument("--patterns", type=int, default=4096)
    p.set_defaults(func=_cmd_constraints)

    p = sub.add_parser("isa", help="print the opcode reference table")
    p.set_defaults(func=_cmd_isa)

    p = sub.add_parser("core-report",
                       help="structural report of the flat core")
    p.set_defaults(func=_cmd_core_report)

    p = sub.add_parser("lint",
                       help="static analysis of netlists, self-test "
                            "programs and campaign configs")
    from repro.lint.cli import add_lint_arguments
    add_lint_arguments(p)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("testability",
                       help="static SCOAP/COP testability report over "
                            "the core and component netlists")
    p.add_argument("--target", choices=("core", "components", "all"),
                   default="all",
                   help="netlists to analyze (default all)")
    p.add_argument("--floor", type=float, default=None, metavar="P",
                   help="COP detection-probability floor below which a "
                        "fault site counts as predicted random-"
                        "resistant (default 1e-8, the NET010 floor)")
    p.add_argument("--seq-cost", type=float, default=None, metavar="N",
                   help="SCOAP cost of crossing one flip-flop boundary "
                        "(default 10)")
    p.add_argument("--json", metavar="FILE",
                   help="also write the per-component JSON report")
    p.add_argument("--profile", action="store_true",
                   help="print analysis.* profiler sections and emit "
                        "analysis.testability.* counters in the JSON "
                        "report")
    p.set_defaults(func=_cmd_testability)

    p = sub.add_parser("export-verilog",
                       help="write the flat core as structural Verilog")
    p.add_argument("--output", default="dsp_core.v")
    p.set_defaults(func=_cmd_export_verilog)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.harness.experiments import current_scale
    from repro.runtime.errors import ConfigError, ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        current_scale()  # fail fast on an invalid REPRO_SCALE
        if getattr(args, "resume", False) \
                and not getattr(args, "checkpoint", None) \
                and not getattr(args, "checkpoint_dir", None):
            raise ConfigError("--resume requires --checkpoint"
                              if hasattr(args, "checkpoint")
                              else "--resume requires --checkpoint-dir")
        if getattr(args, "jobs", None) is not None:
            from repro.runtime.pool import resolve_jobs
            resolve_jobs(args.jobs)  # fail fast on a bad --jobs value
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
