"""Whole-core sequential ATPG baseline (paper §3.5, experiment E5).

"For comparison purposes, we generated test patterns with the Tetramax
ATPG tool.  The test only gave us an 8.51% fault coverage.  Because our
core is a relatively complex circuit, it is just too hard for the ATPG
tool to determine good sequential test patterns."

We reproduce the *method*, not the tool: the flat gate-level core is
unrolled over a small number of time frames and PODEM attacks each fault's
per-frame replicas, starting from the reset state — exactly the structural
view a gate-level sequential ATPG has.  With a bounded frame count and
backtrack budget (any practical tool bounds both), most faults are
unreachable: exciting a datapath fault needs register values that only an
instruction *sequence* can justify, and propagating it to the port needs
an ``out`` reaching WB — knowledge the gate-level view does not have.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.atpg.podem import Podem
from repro.atpg.unroll import UnrolledNetlist, unroll
from repro.dsp.gatelevel import make_gatelevel_core
from repro.faults.coverage import CoverageReport
from repro.faults.model import Fault, collapse_faults
from repro.logic.netlist import Netlist


@dataclass
class AtpgBaselineResult:
    """Outcome of the sequential-ATPG baseline run."""

    n_faults: int
    n_detected: int
    n_untestable_within_frames: int
    n_aborted: int
    n_frames: int
    n_detected_random_phase: int = 0
    patterns: List[List[int]] = field(default_factory=list)
    #: each pattern is a per-frame list of 17-bit instruction words
    #: total PODEM search effort over the deterministic phase, for
    #: guided-vs-unguided comparisons in the benchmark registry
    total_backtracks: int = 0
    total_decisions: int = 0
    guided: bool = False

    @property
    def fault_coverage(self) -> float:
        return self.n_detected / self.n_faults if self.n_faults else 1.0

    def coverage_report(self) -> CoverageReport:
        return CoverageReport(
            name=f"sequential ATPG ({self.n_frames} frames)",
            n_faults=self.n_faults,
            n_detected=self.n_detected,
            n_vectors=sum(len(p) for p in self.patterns),
        )


def run_atpg_baseline(
    netlist: Optional[Netlist] = None,
    n_frames: int = 6,
    backtrack_limit: int = 400,
    fault_sample: Optional[int] = 300,
    seed: int = 5,
    random_phase_sequences: int = 1,
    random_phase_length: int = 32,
    sample_rng: Optional[random.Random] = None,
    random_phase_rng: Optional[random.Random] = None,
    guided: bool = False,
) -> AtpgBaselineResult:
    """Run the commercial-tool recipe on the flat core.

    Like any sequential ATPG (TetraMAX included) the run opens with a
    *random-pattern phase* — a handful of random vector sequences
    fault-simulated from reset — before deterministic time-frame PODEM
    attacks the survivors.  The random phase is where most of the small
    coverage such tools achieve on a pipelined core comes from; PODEM then
    mostly aborts, which is the paper's finding.

    ``fault_sample`` grades a deterministic random sample of the collapsed
    fault universe (the full list takes hours in pure Python); ``None``
    targets every fault.  ``sample_rng`` / ``random_phase_rng`` override
    the default seed-derived streams for the two randomised stages.
    """
    core = netlist if netlist is not None else make_gatelevel_core()
    unrolled = unroll(core, n_frames)
    engine = Podem(unrolled.netlist, backtrack_limit=backtrack_limit,
                   guided=guided)

    faults = list(collapse_faults(core).faults)
    if fault_sample is not None and fault_sample < len(faults):
        rng = sample_rng if sample_rng is not None else random.Random(seed)
        faults = rng.sample(faults, fault_sample)

    # Random-pattern phase: raw word sequences from reset, fault-parallel.
    random_detected = 0
    if random_phase_sequences > 0:
        from repro.faults.model import FaultList
        from repro.faults.seqsim import SeqFaultSimulator
        rng = random_phase_rng if random_phase_rng is not None \
            else random.Random(seed + 1)
        sim = SeqFaultSimulator(
            core,
            fault_list=FaultList(netlist=core, faults=list(faults)),
        )
        survivors = list(faults)
        for _ in range(random_phase_sequences):
            if not survivors:
                break
            stimulus = {"instr": [rng.randrange(1 << 17)
                                  for _ in range(random_phase_length)]}
            outcome = sim.run_sequence(stimulus, faults=survivors)
            survivors = outcome.undetected
        random_detected = len(faults) - len(survivors)
        faults = survivors

    detected = untestable = aborted = 0
    total_backtracks = total_decisions = 0
    patterns: List[List[int]] = []
    instr_words_per_frame = [
        unrolled.frame_bus(frame, "instr") for frame in range(n_frames)
    ]
    for fault in faults:
        result = engine.generate_multi(unrolled.fault_sites(fault))
        total_backtracks += result.backtracks
        total_decisions += result.decisions
        if result.detected and result.pattern is not None:
            detected += 1
            frames = []
            for nets in instr_words_per_frame:
                word = 0
                for i, net in enumerate(nets):
                    if result.pattern.get(net):
                        word |= 1 << i
                frames.append(word)
            patterns.append(frames)
        elif result.status == "untestable":
            untestable += 1
        else:
            aborted += 1
    return AtpgBaselineResult(
        n_faults=len(faults) + random_detected,
        n_detected=detected + random_detected,
        n_untestable_within_frames=untestable,
        n_aborted=aborted,
        n_frames=n_frames,
        n_detected_random_phase=random_detected,
        patterns=patterns,
        total_backtracks=total_backtracks,
        total_decisions=total_decisions,
        guided=guided,
    )
