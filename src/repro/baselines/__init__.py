"""Comparison baselines from the paper's §3.5.

* :mod:`repro.baselines.pseudorandom` — plain pseudorandom BIST: a 17-bit
  LFSR drives raw instruction-word vectors into the core ("the LFSR does
  not take into account the core's present state or the core's behavior").
* :mod:`repro.baselines.atpg_baseline` — whole-core sequential ATPG via
  time-frame expansion, the approach that collapses on a pipelined core
  (the paper measured 8.51% fault coverage with Tetramax).
"""

from repro.baselines.pseudorandom import pseudorandom_bist_words, run_pseudorandom_bist
from repro.baselines.atpg_baseline import run_atpg_baseline, AtpgBaselineResult

__all__ = [
    "pseudorandom_bist_words",
    "run_pseudorandom_bist",
    "run_atpg_baseline",
    "AtpgBaselineResult",
]
