"""Tests for netlist structural analysis."""

from repro.dsp.gatelevel import make_gatelevel_core
from repro.logic.analysis import (
    fanout_histogram,
    logic_depth,
    region_inventory,
)
from repro.logic.builder import NetlistBuilder
from repro.rtl.arith import make_adder


def chain(n):
    b = NetlistBuilder("chain")
    net = b.input("a")
    for _ in range(n):
        net = b.not_(net)
    b.output(net)
    return b.finish()


def test_depth_of_inverter_chain():
    report = logic_depth(chain(7))
    assert report.max_depth == 7
    assert report.mean_output_depth == 7.0


def test_depth_counts_dff_boundaries_as_sources():
    b = NetlistBuilder("seq")
    a = b.input("a")
    q = b.dff(b.not_(a), name="q")
    b.output(b.not_(q))
    report = logic_depth(b.finish())
    # Two sinks: the PO (depth 1 from q) and the DFF D (depth 1 from a).
    assert report.max_depth == 1


def test_ripple_adder_depth_scales_linearly():
    small = logic_depth(make_adder(4)).max_depth
    large = logic_depth(make_adder(16)).max_depth
    assert large > small
    assert large >= 16  # carry chain dominates


def test_fanout_histogram_buckets():
    b = NetlistBuilder("fan")
    a = b.input("a")
    for _ in range(6):
        b.output(b.not_(a))
    hist = fanout_histogram(b.finish())
    assert hist[">8"] == 0
    assert hist["<=8"] == 1  # the input net drives 6 gates
    assert hist["<=1"] == 0  # inverter outputs are POs (no gate loads)


def test_region_inventory_on_flat_core():
    inventory = region_inventory(make_gatelevel_core())
    assert inventory["multiplier"] > 300
    assert inventory["shifter"] > 150
    assert inventory["regfile"] > 500
    assert inventory["(glue)"] > 50
    total = sum(inventory.values())
    assert total == len(make_gatelevel_core().gates)


def test_analysis_helpers_on_empty_netlist():
    """Zero-gate netlists must not trip max()/indexing on empty data."""
    from repro.logic.netlist import Netlist
    empty = Netlist("empty")
    report = logic_depth(empty)
    assert report.max_depth == 0
    assert report.mean_output_depth == 0.0
    hist = fanout_histogram(empty)
    assert all(count == 0 for count in hist.values())
    assert fanout_histogram(empty, buckets=()) == {">0": 0}
    assert region_inventory(empty) == {}


def test_analysis_helpers_on_dff_only_netlist():
    from repro.logic.netlist import Netlist
    nl = Netlist("dffonly")
    d = nl.add_input(nl.add_net("d"))
    q = nl.add_net("q")
    nl.add_dff(q, d)
    nl.add_output(q)
    assert logic_depth(nl).max_depth == 0
    assert fanout_histogram(nl)["<=1"] == 1  # the D input is one load
    assert fanout_histogram(nl, buckets=()) == {">0": 1}


def test_fanout_histogram_empty_buckets_on_real_netlist():
    """buckets=() collapses everything into the overflow bucket."""
    netlist = make_adder(4)
    hist = fanout_histogram(netlist, buckets=())
    assert set(hist) == {">0"}
    assert hist[">0"] == sum(fanout_histogram(netlist).values())


def test_core_depth_is_reported():
    report = logic_depth(make_gatelevel_core())
    # The multiplier's ripple array dominates; depth must be substantial
    # but finite.
    assert 30 <= report.max_depth <= 200
