"""Static mode reachability and its cross-check against Phase 2.

The paper eliminates the shifter's "10"/"11" columns by hand ("eliminate
columns whose control bits are not set by any instruction"); Phase 2 does
it dynamically from the measured table.  These tests pin the static
derivation to that answer and enforce that both mechanisms agree on the
full paper-core table.
"""

import pytest

from repro.dsp.isa import Opcode, control_word
from repro.lint.modes import (
    MODE_EXTRACTORS,
    component_mode,
    lint_isa,
    lint_table,
    mode_reachability_crosscheck,
    static_mode_reachability,
    static_unreachable_columns,
)
from repro.selftest.phase2 import unreachable_columns


@pytest.fixture(scope="module")
def paper_table():
    """The full paper-core metrics table at quick scale.

    Cell *presence* (what reachability checks) is deterministic: a cell
    exists iff the instruction's trace exercised the column, regardless
    of how many samples measured it.
    """
    from repro.metrics.table import build_metrics_table
    return build_metrics_table(n_controllability_samples=8,
                               n_observability_good=2)


def test_static_unreachable_is_exactly_shifter_hi_modes():
    assert static_unreachable_columns() == [("shifter", 2), ("shifter", 3)]


def test_shifter_reachable_modes():
    assert static_mode_reachability()["shifter"] == frozenset({0, 1})


def test_every_opcode_has_a_mode_for_every_extractor():
    for name in MODE_EXTRACTORS:
        for op in Opcode:
            assert component_mode(name, control_word(op)) >= 0


def test_single_mode_components_report_mode_zero():
    assert component_mode("multiplier", control_word(Opcode.MPYA)) == 0


def test_lint_isa_reports_the_discarded_columns():
    report = lint_isa()
    locations = {f.location for f in report}
    assert locations == {"isa:shifter:2", "isa:shifter:3"}
    assert report.exit_code() == 0  # info only


def test_static_agrees_with_dynamic_on_paper_core(paper_table):
    """The acceptance cross-check: both discard mechanisms coincide."""
    dynamic_only, static_only = mode_reachability_crosscheck(paper_table)
    assert dynamic_only == []
    assert static_only == []
    assert set(unreachable_columns(paper_table)) == \
        set(static_unreachable_columns(paper_table.columns))
    assert lint_table(paper_table).findings == []


def test_fabricated_disagreement_is_caught(paper_table):
    """Deleting every cell of a reachable column must trip ISA001."""
    from repro.metrics.table import MetricsTable
    target = ("addsub", 1)
    assert target in paper_table.columns
    pruned = MetricsTable(
        rows=paper_table.rows,
        columns=paper_table.columns,
        cells={key: cell for key, cell in paper_table.cells.items()
               if key[1] != target},
        fault_counts=paper_table.fault_counts,
    )
    dynamic_only, static_only = mode_reachability_crosscheck(pruned)
    assert dynamic_only == [target]
    assert static_only == []
    report = lint_table(pruned)
    assert [f.rule for f in report] == ["ISA001"]
    assert "addsub" in report.findings[0].message
    assert report.exit_code() == 1
