"""Shared test configuration: golden-file plumbing.

Golden files live under ``tests/goldens/`` as canonical, sorted,
indented JSON.  A test compares its freshly computed payload against
the committed file; when the behaviour changes *deliberately*, rerun
with ``--regen-goldens`` to rewrite every golden from the current
implementation and review the diff like any other code change.

This module also defines *the* deterministic golden campaign — a fixed
workload run under an injected counter clock so its checkpoint bytes
and report are reproducible bit-for-bit.  The goldens it produced were
generated **before** the observability layer existed, so comparing
against them proves the obs layer is behaviourally inert.
"""

import itertools
import json
from pathlib import Path

import pytest

from repro.runtime.runner import CampaignReport, CampaignRunner, WorkUnit

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Fingerprint of the deterministic golden campaign (see below).
GOLDEN_CAMPAIGN_FINGERPRINT = {"campaign": "golden-inertness", "seed": 2004}


def golden_campaign_units():
    """A fixed workload: six healthy units plus one deterministic failure."""
    def ok(n):
        return lambda: {"detected": n, "word": (n * 3) % 7}

    def boom():
        raise ValueError("injected deterministic failure")

    units = [WorkUnit(unit_id=f"u{i:02d}", run=ok(i)) for i in range(6)]
    units.append(WorkUnit(unit_id="u-bad", run=boom))
    return units


def golden_campaign_runner(checkpoint: str) -> CampaignRunner:
    """A runner whose clock ticks 0.0, 1.0, 2.0 ... — elapsed values are
    deterministic, so the checkpoint and report are byte-stable."""
    tick = itertools.count()
    return CampaignRunner(
        checkpoint=checkpoint,
        sleep=lambda s: None,
        clock=lambda: float(next(tick)),
    )


def campaign_report_payload(report: CampaignReport) -> dict:
    """Canonical JSON form of a report: records in order + accounting."""
    return {
        "records": [r.record() for r in report.results.values()],
        "counts": report.counts(),
        "summary": report.summary(),
        "interrupted": report.interrupted,
    }


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens", action="store_true", default=False,
        help="rewrite tests/goldens/*.json from the current behaviour "
             "instead of asserting against them",
    )


def canonical_json(payload) -> str:
    """The byte-stable serialisation every golden file uses."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


@pytest.fixture
def golden(request):
    """Compare ``payload`` against ``tests/goldens/<name>`` (or rewrite it).

    Usage::

        def test_something(golden):
            golden("something.json", compute_payload())
    """
    regen = request.config.getoption("--regen-goldens")

    def check(name: str, payload) -> None:
        path = GOLDEN_DIR / name
        text = canonical_json(payload)
        if regen:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            return
        if not path.exists():
            pytest.fail(
                f"missing golden {path.name}; generate it with "
                f"`pytest --regen-goldens` and commit the file"
            )
        expected = path.read_text()
        if text != expected:
            pytest.fail(
                f"golden drift in {path.name}: current behaviour no longer "
                f"matches the committed golden.  If the change is "
                f"deliberate, rerun with --regen-goldens and review the "
                f"diff; otherwise a metric/selection regression slipped in."
            )

    return check
