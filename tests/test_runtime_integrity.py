"""Tests for checkpoint hash chaining and the campaign invariant checker.

Includes the property-style corruption sweep: ``load(repair=True)`` is
driven through hundreds of seeded random corruptions (byte truncation,
mid-record bit flips, duplicated trailing records) and must *never*
raise and *never* resurrect a corrupted record.
"""

import json
import os
import random

import pytest

from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.errors import (
    CampaignError,
    CheckpointCorruptError,
    ConfigError,
    FingerprintMismatchError,
    IntegrityError,
)
from repro.runtime.integrity import (
    chain_digest,
    check_campaign,
    verify_campaign,
)
from repro.runtime.runner import CampaignRunner, WorkUnit


def units(n, base=0):
    return [WorkUnit(unit_id=f"u{i}", run=lambda i=i: base + i * 10)
            for i in range(n)]


# ----------------------------------------------------------------------
# Chain primitives
# ----------------------------------------------------------------------
def test_chain_digest_ignores_key_order():
    a = {"unit": "x", "status": "ok", "value": 1}
    b = {"value": 1, "unit": "x", "status": "ok"}
    assert chain_digest("t", a) == chain_digest("t", b)


def test_chain_digest_excludes_chain_field():
    a = {"unit": "x", "status": "ok"}
    b = {"unit": "x", "status": "ok", "chain": "ffff"}
    assert chain_digest("t", a) == chain_digest("t", b)


def test_chain_digest_depends_on_predecessor():
    record = {"unit": "x", "status": "ok"}
    assert chain_digest("t1", record) != chain_digest("t2", record)


# ----------------------------------------------------------------------
# Acceptance: a single flipped bit is detected on the next load
# ----------------------------------------------------------------------
def test_single_bit_flip_detected_by_chain(tmp_path):
    path = str(tmp_path / "run.jsonl")
    CampaignRunner(checkpoint=path).run(units(4), fingerprint={"n": 4})
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    lines = data.split(b"\n")
    # Flip one bit in the middle record line (never the header).
    target = 2
    offset = sum(len(l) + 1 for l in lines[:target]) + len(lines[target]) // 2
    data[offset] ^= 0x01
    with open(path, "wb") as handle:
        handle.write(data)
    with pytest.raises(CheckpointCorruptError):
        CheckpointStore(path).load()


# ----------------------------------------------------------------------
# Enforced fingerprint on resume
# ----------------------------------------------------------------------
def test_fingerprint_mismatch_is_config_error(tmp_path):
    path = str(tmp_path / "run.jsonl")
    CampaignRunner(checkpoint=path).run(units(2), fingerprint={"n": 2})
    with pytest.raises(FingerprintMismatchError) as excinfo:
        CampaignRunner(checkpoint=path).run(
            units(3), fingerprint={"n": 3}, resume=True)
    # The ISSUE contract (ConfigError) and the historical contract
    # (CampaignError) are both honoured.
    assert isinstance(excinfo.value, ConfigError)
    assert isinstance(excinfo.value, CampaignError)


def test_fingerprint_mismatch_force_override(tmp_path):
    path = str(tmp_path / "run.jsonl")
    CampaignRunner(checkpoint=path).run(units(2), fingerprint={"n": 2})
    report = CampaignRunner(checkpoint=path).run(
        units(3), fingerprint={"n": 3}, resume=True, force=True)
    assert report.counts()["resumed"] == 2
    assert report.counts()["executed"] == 1


# ----------------------------------------------------------------------
# verify_campaign invariants
# ----------------------------------------------------------------------
def test_verify_clean_campaign_has_no_violations(tmp_path):
    path = str(tmp_path / "run.jsonl")
    golden = CampaignRunner().run(units(5))
    report = CampaignRunner(checkpoint=path).run(units(5))
    assert verify_campaign(
        report, checkpoint=path, golden=golden,
        expected_units=[f"u{i}" for i in range(5)],
    ) == []
    check_campaign(report, checkpoint=path, golden=golden)  # no raise


def test_verify_detects_missing_and_extra_units():
    report = CampaignRunner().run(units(3))
    kinds = {v.kind for v in verify_campaign(
        report, expected_units=["u0", "u1", "u2", "u3"])}
    assert kinds == {"missing-unit"}
    kinds = {v.kind for v in verify_campaign(
        report, expected_units=["u0", "u1"])}
    assert kinds == {"extra-unit"}


def test_verify_detects_golden_value_divergence():
    golden = CampaignRunner().run(units(3))
    report = CampaignRunner().run(units(3, base=1))  # every value off by 1
    violations = verify_campaign(report, golden=golden)
    assert [v.kind for v in violations] == ["golden-mismatch"]


def test_verify_detects_unpersisted_unit(tmp_path):
    path = str(tmp_path / "run.jsonl")
    report = CampaignRunner(checkpoint=path).run(units(3))
    # Chop the last record off the file: u2 is now reported but not
    # durable.
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().split("\n") if line]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines[:-1]) + "\n")
    kinds = [v.kind for v in verify_campaign(report, checkpoint=path)]
    assert kinds == ["unpersisted-unit"]


def test_verify_detects_orphan_scratch(tmp_path):
    path = str(tmp_path / "run.jsonl")
    report = CampaignRunner(checkpoint=path).run(units(2))
    open(path + ".shard-123", "w").close()
    open(path + ".tmp", "w").close()
    kinds = sorted(v.kind for v in verify_campaign(report, checkpoint=path))
    assert kinds == ["orphan-scratch", "orphan-scratch"]


def test_verify_detects_broken_chain(tmp_path):
    path = str(tmp_path / "run.jsonl")
    report = CampaignRunner(checkpoint=path).run(units(2))
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text.replace('"value": 0', '"value": 5'))
    kinds = [v.kind for v in verify_campaign(report, checkpoint=path)]
    assert kinds == ["broken-chain"]


def test_check_campaign_raises_integrity_error():
    report = CampaignRunner().run(units(2))
    with pytest.raises(IntegrityError):
        check_campaign(report, expected_units=["u0", "u1", "u9"])


# ----------------------------------------------------------------------
# Property sweep: repair never raises, never resurrects corruption
# ----------------------------------------------------------------------
def _fresh_checkpoint(path, n_records):
    store = CheckpointStore(path)
    store.create({"kind": "prop", "n": n_records})
    for i in range(n_records):
        store.append({"unit": f"u{i}", "status": "ok", "value": i * 3})
    store.close()


def _mutate(rng, path):
    """Apply one random corruption; returns its human-readable name."""
    with open(path, "rb") as handle:
        data = bytearray(handle.read())
    if len(data) < 2:
        return "noop"  # earlier truncations ate (almost) everything
    choice = rng.randrange(3)
    if choice == 0:                         # byte truncation
        cut = rng.randrange(1, len(data))
        data = data[:-cut]
        name = f"truncate:{cut}"
    elif choice == 1:                       # mid-record bit flip
        lines = bytes(data).split(b"\n")
        targets = [i for i in range(1, len(lines)) if lines[i]]
        if not targets:
            return "noop"  # no record lines survive to flip
        t = targets[rng.randrange(len(targets))]
        line = bytearray(lines[t])
        line[rng.randrange(len(line))] ^= 1 << rng.randrange(8)
        lines = list(lines)
        lines[t] = bytes(line)
        data = bytearray(b"\n".join(lines))
        name = f"flip:line{t}"
    else:                                   # duplicated trailing record
        lines = [l for l in bytes(data).split(b"\n") if l]
        data = bytearray(bytes(data) + lines[-1] + b"\n")
        name = "duplicate"
    with open(path, "wb") as handle:
        handle.write(data)
    return name


@pytest.mark.parametrize("case_seed", range(200))
def test_repair_never_raises_never_resurrects(tmp_path, case_seed):
    rng = random.Random(case_seed)
    path = str(tmp_path / "prop.jsonl")
    n_records = rng.randrange(1, 8)
    _fresh_checkpoint(path, n_records)
    with open(path, "rb") as handle:
        pristine_lines = [l for l in handle.read().split(b"\n") if l]
    for _ in range(rng.randrange(1, 4)):
        name = _mutate(rng, path)

    store = CheckpointStore(path)
    try:
        _, records = store.load(repair=True)
    except CheckpointCorruptError:
        # Repair may still (correctly) refuse a checkpoint whose header
        # was destroyed — identity loss is not repairable.  It must be
        # the *typed* error, never a bare ValueError/KeyError/etc.
        return
    # Every surviving record is byte-identical to one the pristine file
    # held: corruption can delete history, never rewrite it.
    pristine = {
        json.loads(line)["unit"]: json.loads(line)
        for line in pristine_lines[1:]
    }
    for unit_id, record in records.items():
        assert record == pristine[unit_id], \
            f"corrupted record resurrected (seed {case_seed}, {name})"
    # Survivors form a prefix: repair truncates, it does not cherry-pick.
    survived = list(records)
    assert survived == [f"u{i}" for i in range(len(survived))]
    # The repaired file is now trustworthy (idempotence).
    _, again = CheckpointStore(path).load()
    assert again == records
