"""Tests for Verilog/vector/testbench export."""

import re

import pytest

from repro.bist.template import RandomLoad, TemplateArchitecture
from repro.dsp.gatelevel import make_gatelevel_core
from repro.dsp.isa import Instruction, Opcode
from repro.logic.builder import NetlistBuilder
from repro.logic.export import to_verilog
from repro.rtl.arith import make_addsub
from repro.selftest.export import (
    expected_responses,
    write_testbench,
    write_vector_file,
)


def test_verilog_combinational():
    src = to_verilog(make_addsub(4), "addsub4")
    assert src.startswith("module addsub4")
    assert src.strip().endswith("endmodule")
    assert "input a_0;" in src
    assert "output result_0;" in src
    # no registers in a combinational netlist
    assert "always" not in src


def test_verilog_sequential():
    b = NetlistBuilder("reg1")
    a = b.input("a")
    q = b.dff(a, init=1, name="q")
    b.output(q)
    src = to_verilog(b.finish())
    assert "reg q;" in src
    assert "q <= 1'b1;" in src      # reset value
    assert "q <= a;" in src         # next state
    assert "always @(posedge clk)" in src


def test_verilog_gate_flavours():
    b = NetlistBuilder("gates")
    x = b.input("x")
    y = b.input("y")
    b.output(b.nand(x, y))
    b.output(b.xnor(x, y))
    b.output(b.not_(x))
    b.output(b.const1())
    src = to_verilog(b.finish())
    assert "~(x & y)" in src
    assert "~(x ^ y)" in src
    assert "= ~x;" in src
    assert "1'b1;" in src


def test_verilog_full_core_exports():
    src = to_verilog(make_gatelevel_core(), "dsp_core")
    assert src.count("assign") > 2000
    assert "always @(posedge clk)" in src
    # Balanced module/endmodule.
    assert src.count("module") - src.count("endmodule") == \
        src.count("endmodule")  # exactly one of each
    assert len(re.findall(r"^module ", src, re.M)) == 1


def test_expected_responses_drain():
    words = [0] * 3
    responses = expected_responses(words)
    assert len(responses) == 3 + 4
    assert all(valid in (0, 1) for valid, _ in responses)


def test_write_vector_file(tmp_path):
    program = [
        RandomLoad(0), RandomLoad(1),
        Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
        Instruction(Opcode.OUT, regb=2),
    ]
    words = TemplateArchitecture(program).expand(3)
    path = tmp_path / "vectors.txt"
    count = write_vector_file(path, words)
    lines = path.read_text().splitlines()
    assert count == len(lines) == len(words) + 4
    for line in lines:
        instr, valid, out = line.split()
        assert len(instr) == 17 and len(out) == 8
        assert valid in ("0", "1")
    # At least one cycle must observe a value.
    assert any(line.split()[1] == "1" for line in lines)


def test_write_testbench(tmp_path):
    path = tmp_path / "tb.v"
    write_testbench(path, make_gatelevel_core(), vector_file="v.txt")
    src = path.read_text()
    assert "module dsp_core_tb;" in src
    assert '$fopen("v.txt", "r")' in src
    assert "PASS" in src and "FAIL" in src
    assert src.count("endmodule") == 2  # core + testbench
