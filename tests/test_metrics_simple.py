"""Tests for Table 1 (simple datapath) metrics."""

import pytest

from repro.dsp.simple import SimpleOp
from repro.metrics.simple_metrics import (
    SimpleVariant,
    build_table1,
    measure_simple_controllability,
    measure_simple_observability,
    render_table1,
    table1_variants,
)


def test_table1_has_eight_rows():
    variants = table1_variants()
    assert len(variants) == 8
    assert [v.label for v in variants[:2]] == ["Add 0", "Add R"]


@pytest.fixture(scope="module")
def table1():
    return build_table1(n_samples=200, n_good=12, seed=3)


def test_mult_controllable_everywhere(table1):
    for row in table1.values():
        if "Mult" in row:
            assert row["Mult"].c > 0.8


def test_alu_modes_match_rows(table1):
    assert "Add" in table1["Add 0"]
    assert "Sub" not in table1["Add 0"]
    assert "Sub" in table1["Sub R"]
    assert "Clear" in table1["Clr 0"]
    assert "Add" in table1["Mac R"]


def test_random_acc_state_raises_alu_controllability(table1):
    assert table1["Add R"]["Add"].c > table1["Add 0"]["Add"].c
    assert table1["Sub R"]["Sub"].c > table1["Sub 0"]["Sub"].c


def test_mac_r_covers_three_columns(table1):
    """The paper's Phase 1 walkthrough: 'Mac R covers three columns'."""
    covered = [label for label, cell in table1["Mac R"].items()
               if cell.covered()]
    assert len(covered) >= 3
    assert "Mult" in covered and "Acc" in covered


def test_clear_blocks_mult_observability(table1):
    """Paper Table 1: Clr rows have Mult O = 0.00."""
    assert table1["Clr 0"]["Mult"].o == 0.0
    assert table1["Clr R"]["Mult"].o == 0.0


def test_mult_observable_under_mac(table1):
    assert table1["Mac R"]["Mult"].o > 0.9


def test_acc_observability_high(table1):
    """The accumulator drives the output port: O ≈ 0.99 (paper)."""
    assert table1["Add R"]["Acc"].o > 0.9


def test_render_table1(table1):
    text = render_table1(table1)
    assert "Mult" in text and "Clear" in text
    assert "Add 0" in text
    # Every row of Table 1 should be present.
    for variant in table1_variants():
        assert variant.label in text


def test_individual_engines_deterministic():
    v = SimpleVariant(SimpleOp.MAC, "R")
    a = measure_simple_controllability(v, n_samples=100, seed=1)
    b = measure_simple_controllability(v, n_samples=100, seed=1)
    assert a == b
    oa = measure_simple_observability(v, n_good=5, seed=2)
    ob = measure_simple_observability(v, n_good=5, seed=2)
    assert oa == ob
