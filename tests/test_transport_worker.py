"""Property and fuzz tests for the distributed transport tier.

Two families:

* **Partition/heal/reconnect interleavings** — a hypothesis-driven
  mini-cluster (virtual clock, in-memory links with per-worker
  partition switches, restartable scheduler) runs arbitrary action
  sequences and must always land with every job completed exactly
  once, a clean journal audit, and every healed worker's stale token
  settled as a ``fenced`` journal event.
* **Frame codec fuzz** — truncated, oversized, and garbage frames must
  never crash the decoder or a listening scheduler: the codec either
  buffers (incomplete input) or raises :class:`FrameError`, and the
  socket server drops the bad connection while continuing to serve
  well-formed peers.
"""

import json
import socket
import struct
import tempfile

from hypothesis import given, settings, strategies as st

from repro.runtime.errors import (
    DrainRequested,
    FrameError,
    TransportError,
)
from repro.runtime.service import (
    JobSpec,
    SchedulerService,
    ServiceConfig,
    verify_journal,
)
from repro.runtime.transport import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    MemoryChannel,
    RetryPolicy,
    RpcClient,
    SchedulerEndpoint,
    TransportServer,
    encode_frame,
)
from repro.runtime.worker import RemoteWorker


# ----------------------------------------------------------------------
# The mini-cluster harness
# ----------------------------------------------------------------------
class _Clock:
    def __init__(self, start: float = 1_000.0):
        self.t = start

    def now(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class _PartitionHub:
    """In-memory 'network' with a per-worker partition switch and an
    optional fuse that cuts a link after N delivered frames (so a
    partition can land *mid-job*, between two heartbeats)."""

    def __init__(self):
        self.endpoint = None
        self.partitioned = set()
        self.cut_after = {}  # worker -> frames until the link drops

    def dispatch(self, request):
        worker = request.get("worker")
        if worker in self.partitioned:
            raise TransportError(f"link to {worker} is partitioned")
        if self.endpoint is None:
            raise TransportError("scheduler is down")
        fuse = self.cut_after.get(worker)
        if fuse is not None:
            if fuse <= 0:
                self.partitioned.add(worker)
                del self.cut_after[worker]
                raise TransportError(f"link to {worker} just dropped")
            self.cut_after[worker] = fuse - 1
        return self.endpoint.dispatch(request)


class _Cluster:
    """One scheduler + lazy workers over partitionable in-memory links,
    all on a virtual clock."""

    def __init__(self, scratch, n_jobs=2, n_units=2, lease_ttl=10.0):
        self.clock = _Clock()
        self.hub = _PartitionHub()
        self.journal = f"{scratch}/svc.jsonl"
        self.config = ServiceConfig(
            lease_ttl=lease_ttl, heartbeat_interval=2.0,
            max_job_retries=6)
        self.specs = [
            JobSpec(job_id=f"job{i}", kind="soak", seed=100 + i,
                    n_units=n_units,
                    checkpoint=f"{scratch}/job{i}.jsonl")
            for i in range(n_jobs)
        ]
        self.service = None
        self.workers = {}
        self.start_scheduler()

    def start_scheduler(self):
        self.service = SchedulerService(
            self.journal, config=self.config, clock=self.clock.now)
        for spec in self.specs:
            self.service.submit(spec)  # idempotent by job id
        self.hub.endpoint = SchedulerEndpoint(self.service)

    def crash_scheduler(self):
        if self.service is not None:
            self.service.close()
        self.service = None
        self.hub.endpoint = None

    def worker(self, wid):
        if wid not in self.workers:
            policy = RetryPolicy(
                max_attempts=2, backoff_base=0.0, backoff_factor=1.0,
                backoff_max=0.0, jitter=0.0, deadline=1e9,
                rpc_timeout=1.0)
            client = RpcClient(
                MemoryChannel(self.hub), wid, policy=policy,
                clock=self.clock.now, sleep=lambda _s: None, seed=7)
            self.workers[wid] = RemoteWorker(
                client, host=f"host-{wid}", pid=1)
        return self.workers[wid]

    def run_worker(self, wid):
        try:
            return self.worker(wid).run_next()
        except (TransportError, DrainRequested):
            return None

    def settle(self, rounds=300):
        """Heal everything and drive the cluster until every job is
        terminal (the scheduler is restarted if down)."""
        self.hub.partitioned.clear()
        self.hub.cut_after.clear()
        for _ in range(rounds):
            if self.service is None:
                self.start_scheduler()
            self.service.tick()
            if len(self.service.jobs) >= len(self.specs) \
                    and self.service.all_terminal():
                return
            progress = False
            for wid in ("w0", "w1"):
                outcome = self.run_worker(wid)
                progress = progress or outcome is not None
            if not progress:
                self.clock.advance(self.config.heartbeat_interval)
        raise AssertionError("cluster failed to settle")

    def close(self):
        if self.service is not None:
            self.service.close()

    def events(self):
        with open(self.journal, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        return [json.loads(line) for line in lines[1:] if line]


def _apply(cluster, action):
    if action == "w0" or action == "w1":
        cluster.run_worker(action)
    elif action.startswith("part"):
        cluster.hub.partitioned.add("w" + action[-1])
    elif action.startswith("cut"):
        # Drop the link after 3 more frames: lands mid-job, between
        # the lease and a later heartbeat or completion.
        cluster.hub.cut_after.setdefault("w" + action[-1], 3)
    elif action.startswith("heal"):
        cluster.hub.partitioned.discard("w" + action[-1])
    elif action == "tick":
        if cluster.service is not None:
            cluster.service.tick()
    elif action == "advance":
        cluster.clock.advance(3.0)
    elif action == "expire":
        cluster.clock.advance(cluster.config.lease_ttl + 1.0)
    elif action == "restart":
        cluster.crash_scheduler()
        cluster.start_scheduler()
    elif action == "crash":
        cluster.crash_scheduler()


_ACTIONS = st.lists(
    st.sampled_from(
        ["w0", "w1", "part0", "part1", "cut0", "cut1", "heal0",
         "heal1", "tick", "advance", "expire", "restart", "crash"]),
    max_size=24)


@settings(max_examples=30, deadline=None)
@given(actions=_ACTIONS)
def test_partition_interleavings_complete_exactly_once(actions):
    """No interleaving of partitions, heals, lease expiries, scheduler
    crashes and reconnects may double-complete a job or corrupt the
    journal; every job still lands terminal."""
    with tempfile.TemporaryDirectory() as scratch:
        cluster = _Cluster(scratch)
        try:
            for action in actions:
                _apply(cluster, action)
            cluster.settle()
        finally:
            cluster.close()

        assert verify_journal(cluster.journal,
                              require_terminal=True) == []
        completes = {}
        for event in cluster.events():
            if event["event"] == "complete":
                job = event["job"]
                completes[job] = completes.get(job, 0) + 1
        # Exactly once: never double-completed, never dropped.
        assert completes == {spec.job_id: 1 for spec in cluster.specs}
        # Every suspect token was settled on heal, none left hanging.
        for worker in cluster.workers.values():
            assert worker._suspect == {}


@settings(max_examples=30, deadline=None)
@given(actions=_ACTIONS)
def test_healed_stale_tokens_always_journal_as_fenced(actions):
    """Whatever the interleaving, a (job, token) pair a healed worker
    flushes is journaled: as ``release`` while the token is current, as
    ``fenced`` once it went stale — and every fenced token is one some
    lease actually granted (the scheduler never fences fiction)."""
    with tempfile.TemporaryDirectory() as scratch:
        cluster = _Cluster(scratch)
        try:
            for action in actions:
                _apply(cluster, action)
            cluster.settle()
        finally:
            cluster.close()

        granted = set()
        settled = set()
        for event in cluster.events():
            if event["event"] == "lease":
                granted.add((event["job"], event["token"]))
            elif event["event"] in ("fenced", "release", "complete",
                                    "fail"):
                if "token" in event:
                    settled.add((event["job"], event["token"]))
        assert settled <= granted
        # Nothing is left suspect after settle(): each flushed pair
        # produced a journal event above (fenced once stale).
        for worker in cluster.workers.values():
            assert worker._suspect == {}


def test_stale_token_fenced_after_partition_and_heal():
    """The deterministic core of the property: a worker partitioned
    mid-job loses its lease to TTL expiry, the job completes elsewhere,
    and the healed worker's old token is journaled as ``fenced``."""
    with tempfile.TemporaryDirectory() as scratch:
        cluster = _Cluster(scratch, n_jobs=1, n_units=3)
        try:
            # w0's link drops after register + lease; the first
            # heartbeat fails, the (job, token) pair goes suspect.
            cluster.hub.cut_after["w0"] = 2
            assert cluster.run_worker("w0") in ("lost", None)
            assert cluster.worker("w0")._suspect, \
                "partition mid-job must leave a suspect token"
            stale = dict(cluster.worker("w0")._suspect)

            # The lease expires and the job completes on w1.
            cluster.clock.advance(cluster.config.lease_ttl + 1.0)
            cluster.service.tick()
            assert cluster.run_worker("w1") == "done"

            # Heal: w0's flush must land as a fenced journal event.
            cluster.hub.partitioned.discard("w0")
            cluster.run_worker("w0")
            assert cluster.worker("w0")._suspect == {}
        finally:
            cluster.close()

        fenced = [e for e in cluster.events() if e["event"] == "fenced"]
        assert [(e["job"], e["token"]) for e in fenced] == \
            list(stale.items())
        completes = [e for e in cluster.events()
                     if e["event"] == "complete"]
        assert len(completes) == 1
        assert verify_journal(cluster.journal,
                              require_terminal=True) == []


# ----------------------------------------------------------------------
# Frame codec fuzz
# ----------------------------------------------------------------------
@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=256))
def test_decoder_never_crashes_on_garbage(data):
    """Arbitrary bytes either buffer, decode, or raise FrameError —
    never anything else."""
    decoder = FrameDecoder()
    try:
        frames = decoder.feed(data)
    except FrameError:
        return
    assert all(isinstance(frame, dict) for frame in frames)


_JSON_DOCS = st.dictionaries(
    st.text(max_size=8),
    st.one_of(st.integers(), st.text(max_size=8), st.booleans()),
    max_size=4)


@settings(max_examples=100, deadline=None)
@given(docs=st.lists(_JSON_DOCS, min_size=1, max_size=4),
       chunk=st.integers(min_value=1, max_value=7))
def test_truncated_frames_buffer_until_complete(docs, chunk):
    """Feeding a frame stream in arbitrarily small chunks loses
    nothing, duplicates nothing, and reorders nothing."""
    stream = b"".join(encode_frame(doc) for doc in docs)
    decoder = FrameDecoder()
    out = []
    for i in range(0, len(stream), chunk):
        out.extend(decoder.feed(stream[i:i + chunk]))
    assert out == docs
    assert decoder.pending_bytes == 0


def test_oversized_length_prefix_is_rejected():
    decoder = FrameDecoder()
    prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
    try:
        decoder.feed(prefix)
    except FrameError:
        return
    raise AssertionError("oversized frame prefix must raise FrameError")


def test_garbage_payload_is_rejected():
    for payload in (b"not json at all", b"[1, 2, 3]", b"42", b"null"):
        frame = struct.pack(">I", len(payload)) + payload
        decoder = FrameDecoder()
        try:
            decoder.feed(frame)
        except FrameError:
            continue
        raise AssertionError(
            f"payload {payload!r} must raise FrameError")


def test_server_survives_garbage_connections(tmp_path):
    """A peer spraying truncated/oversized/garbage frames gets its
    connection dropped; the scheduler keeps serving well-formed
    peers."""
    service = SchedulerService(str(tmp_path / "svc.jsonl"))
    endpoint = SchedulerEndpoint(service)
    server = TransportServer(endpoint, "127.0.0.1:0")
    host, port = server.address.rsplit(":", 1)
    attacks = [
        b"\xff\xff\xff\xff",                      # oversized prefix
        struct.pack(">I", 10) + b"not json!!",    # garbage payload
        struct.pack(">I", 100) + b"short",        # truncated forever
        b"\x00",                                  # torn prefix
    ]
    try:
        for payload in attacks:
            with socket.create_connection((host, int(port)),
                                          timeout=5.0) as sock:
                sock.sendall(payload)
                sock.settimeout(0.5)
                # The server closes the connection (bad frame) or
                # just never answers (incomplete frame) — it must
                # not crash.
                try:
                    sock.recv(1)
                except (socket.timeout, OSError):
                    pass
        # A well-formed peer still gets service.
        with socket.create_connection((host, int(port)),
                                      timeout=5.0) as sock:
            sock.sendall(encode_frame({"op": "ping", "id": "req-1",
                                       "worker": "probe"}))
            sock.settimeout(5.0)
            decoder = FrameDecoder()
            frames = []
            while not frames:
                data = sock.recv(4096)
                assert data, "server hung up on a well-formed peer"
                frames = decoder.feed(data)
            assert frames[0].get("ok") is True
    finally:
        server.stop()
        service.close()
