"""Tests for pattern-parallel combinational fault simulation."""

import random

import pytest

from repro._util import mask
from repro.faults.combsim import CombFaultSimulator
from repro.faults.model import Fault, collapse_faults, full_fault_list
from repro.logic.builder import NetlistBuilder
from repro.rtl.arith import make_addsub
from repro.rtl.multiplier import make_multiplier


def and2():
    b = NetlistBuilder("and2")
    a = b.input("a")
    c = b.input("c")
    out = b.and_(a, c, name="y")
    b.output(out)
    b.netlist.add_bus("y", [out])
    return b.finish()


def test_rejects_sequential_netlist():
    b = NetlistBuilder("seq")
    a = b.input("a")
    q = b.dff(a)
    b.output(q)
    with pytest.raises(ValueError):
        CombFaultSimulator(b.finish())


def test_and_gate_detection_patterns():
    nl = and2()
    sim = CombFaultSimulator(nl, collapse_faults(nl, full_fault_list(nl)))
    patterns = {"a": [0, 0, 1, 1], "c": [0, 1, 0, 1]}
    y = nl.net_id("y")
    detections = sim.detect(patterns, faults=[Fault(y, 0), Fault(y, 1)])
    # y sa0 detected only when good y = 1, i.e. pattern 3.
    assert detections[Fault(y, 0)] == 0b1000
    # y sa1 detected whenever good y = 0: patterns 0,1,2.
    assert detections[Fault(y, 1)] == 0b0111


def test_exhaustive_patterns_detect_everything_on_addsub():
    """All input combinations detect every collapsed fault of a small addsub."""
    nl = make_addsub(2)
    sim = CombFaultSimulator(nl)
    a_words, b_words, subs = [], [], []
    for a in range(4):
        for b in range(4):
            for s in (0, 1):
                a_words.append(a)
                b_words.append(b)
                subs.append(s)
    detections = sim.detect({"a": a_words, "b": b_words, "sub": subs})
    undetected = [f for f, m in detections.items() if m == 0]
    assert undetected == []


def test_random_patterns_high_coverage_multiplier():
    nl = make_multiplier(4, 8)
    sim = CombFaultSimulator(nl)
    rng = random.Random(7)
    words_a = [rng.randrange(16) for _ in range(256)]
    words_b = [rng.randrange(16) for _ in range(256)]
    detections = sim.detect({"a": words_a, "b": words_b})
    coverage = sum(1 for m in detections.values() if m) / len(detections)
    assert coverage > 0.95


def test_run_with_dropping_reports_first_pattern():
    nl = and2()
    sim = CombFaultSimulator(nl)
    y = nl.net_id("y")
    blocks = [
        {"a": [0, 0], "c": [0, 1]},
        {"a": [1, 1], "c": [0, 1]},
    ]
    first = sim.run_with_dropping(blocks, faults=[Fault(y, 0), Fault(y, 1)])
    assert first[Fault(y, 1)] == 0  # first pattern with y=0
    assert first[Fault(y, 0)] == 3  # global index of (a=1, c=1)


def test_local_detection_reports_faulty_words():
    nl = and2()
    sim = CombFaultSimulator(nl)
    y = nl.net_id("y")
    local = sim.local_detection(
        Fault(y, 1), {"a": [0, 1], "c": [0, 1]}, output_buses=["y"]
    )
    assert local.detected_mask == 0b01
    assert local.faulty_words["y"] == [1, 1]


def test_unexcited_fault_not_detected():
    nl = and2()
    sim = CombFaultSimulator(nl)
    y = nl.net_id("y")
    detections = sim.detect({"a": [1], "c": [1]}, faults=[Fault(y, 1)])
    assert detections[Fault(y, 1)] == 0


def test_fault_on_primary_output_input_observable():
    """A fault on a PI that is also a PO must be directly observable."""
    b = NetlistBuilder("wire")
    a = b.input("a")
    out = b.buf(a, name="y")
    b.output(out)
    nl = b.finish()
    sim = CombFaultSimulator(nl)
    detections = sim.detect(
        {"a": [0, 1]}, faults=[Fault(a, 0), Fault(a, 1)]
    )
    assert detections[Fault(a, 0)] == 0b10
    assert detections[Fault(a, 1)] == 0b01


def test_mismatched_pattern_lengths_rejected():
    sim = CombFaultSimulator(and2())
    with pytest.raises(ValueError):
        sim.detect({"a": [0, 1], "c": [0]})
