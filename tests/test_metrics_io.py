"""Tests for metrics-table persistence."""

import json

import pytest

from repro.dsp.isa import Opcode
from repro.metrics.controllability import InstructionVariant
from repro.metrics.io import (
    load_table,
    save_table,
    table_from_json,
    table_to_json,
)
from repro.metrics.table import MetricsCell, MetricsTable


def sample_table():
    rows = [InstructionVariant(Opcode.MPYA, "0"),
            InstructionVariant(Opcode.MACA_ADD, "R")]
    table = MetricsTable(
        rows=rows,
        columns=[("multiplier", 0), ("shifter", 1)],
        fault_counts={"multiplier": 837, "shifter": 663},
        c_theta=0.7, o_theta=0.5,
    )
    table.set_cell(rows[0], ("multiplier", 0), MetricsCell(0.99, 0.71))
    table.set_cell(rows[1], ("shifter", 1), MetricsCell(0.98, 0.51))
    return table


def test_roundtrip_preserves_everything():
    table = sample_table()
    restored = table_from_json(table_to_json(table))
    assert restored.rows == table.rows
    assert restored.columns == table.columns
    assert restored.fault_counts == table.fault_counts
    assert restored.c_theta == table.c_theta
    assert restored.cells == table.cells


def test_coverage_marks_survive_roundtrip():
    table = sample_table()
    restored = table_from_json(table_to_json(table))
    for row in table.rows:
        for column in table.columns:
            assert restored.is_covered(row, column) == \
                table.is_covered(row, column)


def test_save_load_file(tmp_path):
    path = tmp_path / "table.json"
    table = sample_table()
    save_table(table, path)
    restored = load_table(path)
    assert restored.cells == table.cells


def test_schema_guard():
    payload = json.loads(table_to_json(sample_table()))
    payload["schema"] = 99
    with pytest.raises(ValueError, match="schema"):
        table_from_json(json.dumps(payload))


def test_json_is_stable():
    a = table_to_json(sample_table())
    b = table_to_json(sample_table())
    assert a == b


def test_phase1_runs_on_restored_table():
    """The downstream flow must not care whether a table was measured or
    loaded."""
    from repro.selftest.phase1 import run_phase1
    restored = table_from_json(table_to_json(sample_table()))
    result = run_phase1(restored, wrapper_labels=())
    assert result.chosen
