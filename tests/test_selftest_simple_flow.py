"""Tests for the simple-datapath end-to-end self-test flow."""

import pytest

from repro.dsp.simple import SimpleOp
from repro.metrics.simple_metrics import build_table1
from repro.selftest.simple_flow import (
    generate_simple_selftest,
    grade_simple_selftest,
    simple_selftest_stimulus,
)


@pytest.fixture(scope="module")
def table1():
    return build_table1(n_samples=250, n_good=15, seed=8)


@pytest.fixture(scope="module")
def selftest(table1):
    return generate_simple_selftest(table1)


def test_greedy_first_pick_is_mac_r(selftest):
    """The paper's worked example: 'Mac R covers three columns.
    This instruction is chosen to be part of the self-test program.'"""
    first_variant, first_columns = selftest.chosen[0]
    assert first_variant.label == "Mac R"
    assert len(first_columns) >= 3
    assert "Mult" in first_columns


def test_all_columns_covered(selftest):
    assert selftest.uncovered == []
    covered = [c for _, columns in selftest.chosen for c in columns]
    assert sorted(covered) == sorted(
        ["Mult", "Add", "Sub", "Clear", "Acc"]
    )


def test_schedule_randomises_before_r_rows(selftest):
    """An accumulator-randomising MAC precedes the first R-state row."""
    assert selftest.schedule[0] is SimpleOp.MAC
    assert len(selftest.schedule) <= 8


def test_stimulus_expansion(selftest):
    stimulus = simple_selftest_stimulus(selftest, 5, seed=1)
    n = 5 * len(selftest.schedule)
    assert len(stimulus["op"]) == len(stimulus["in1"]) == n
    assert stimulus == simple_selftest_stimulus(selftest, 5, seed=1)
    assert stimulus != simple_selftest_stimulus(selftest, 5, seed=2)


def test_exact_gate_level_coverage(selftest):
    """The generated loop must reach near-complete coverage on the flat
    netlist under exact sequential fault simulation."""
    stimulus = simple_selftest_stimulus(selftest, 60)
    result, n_faults = grade_simple_selftest(stimulus)
    coverage = len(result.detected) / n_faults
    assert coverage > 0.97


def test_coverage_grows_with_iterations(selftest):
    short, n = grade_simple_selftest(simple_selftest_stimulus(selftest, 3))
    longer, _ = grade_simple_selftest(simple_selftest_stimulus(selftest, 30))
    assert len(longer.detected) >= len(short.detected)


def test_summary_readable(selftest):
    text = selftest.summary()
    assert "Mac R" in text
    assert "loop:" in text
