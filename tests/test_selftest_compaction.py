"""Tests for fault-simulation-driven program compaction."""

import pytest

from repro.bist.template import RandomLoad
from repro.dsp.isa import Instruction, Opcode
from repro.faults.hierarchical import DspFaultUniverse
from repro.selftest.compaction import (
    attribute_detections,
    compact_program,
)
from repro.selftest.program import TestProgram


def small_universe_factory():
    return DspFaultUniverse(components=["mux7", "macreg", "buffer"],
                            include_regfile=False)


def program_with_dead_line():
    program = TestProgram()
    program.add(RandomLoad(0))
    program.add(RandomLoad(1))
    program.add(Instruction(Opcode.MPYA, rega=0, regb=1, dest=2))
    program.add(Instruction(Opcode.OUT, regb=2))
    # A NOP contributes nothing and should be compacted away.
    program.add(Instruction(Opcode.NOP), comment="padding")
    return program


def test_attribute_detections_windows():
    # loop of 5; detection at cycle 7 credits lines 3..7 mod 5.
    credit = attribute_detections({"f": 7}, loop_length=5)
    assert set(credit) == {3, 4, 0, 1, 2}
    # one-shot prologue shifts attribution.
    credit = attribute_detections({"f": 9}, loop_length=5, n_one_shot=2)
    assert set(credit) == {3, 4, 0, 1, 2}


def test_attribute_skips_undetected_and_one_shot_hits():
    credit = attribute_detections({"a": None, "b": 1},
                                  loop_length=4, n_one_shot=3)
    assert credit == {}


def test_compaction_removes_dead_nop():
    program = program_with_dead_line()
    result = compact_program(program, n_iterations=12,
                             universe_factory=small_universe_factory)
    assert result.lines_saved >= 1
    removed_ops = {line.item.opcode for line in result.removed
                   if isinstance(line.item, Instruction)}
    assert Opcode.NOP in removed_ops
    # Verified: coverage must not drop.
    assert result.compacted_coverage >= result.original_coverage - 1e-9
    assert "compaction:" in result.summary()


def test_compaction_preserves_load_and_out_lines():
    program = program_with_dead_line()
    result = compact_program(program, n_iterations=12,
                             universe_factory=small_universe_factory)
    kept_kinds = [
        line.item.opcode if isinstance(line.item, Instruction) else "rnd"
        for line in result.compacted.loop_lines
    ]
    assert "rnd" in kept_kinds
    assert Opcode.OUT in kept_kinds


def test_compaction_rejects_empty_program():
    with pytest.raises(ValueError):
        compact_program(TestProgram(), 5)
