"""Cross-cutting property tests: invariants that tie subsystems together."""

import random

from hypothesis import given, settings, strategies as st

from repro._util import mask, to_signed, to_unsigned
from repro.bist.template import RandomLoad, TemplateArchitecture
from repro.dsp.core import DspCore
from repro.dsp.isa import (
    Instruction,
    Opcode,
    control_word,
    decode,
    encode,
)
from repro.dsp.mac import MacControls, MacDatapath
from repro.faults.combsim import CombFaultSimulator
from repro.rtl.arith import make_addsub
from repro.rtl.multiplier import multiplier_reference
from repro.rtl.saturate import limiter_reference
from repro.rtl.shifter import shifter_reference
from repro.rtl.truncate import truncater_reference

OPCODES = sorted(Opcode, key=int)
WORD18 = st.integers(0, mask(18))
WORD8 = st.integers(0, 255)


# ----------------------------------------------------------------------
# MAC: the traced implementation and the fast path must be identical.
# ----------------------------------------------------------------------
@settings(max_examples=200)
@given(st.sampled_from(OPCODES), WORD8, WORD8, WORD18, WORD18)
def test_mac_fast_path_equals_traced(op, opa, opb, acc_a, acc_b):
    ctrl = MacControls.from_control_word(control_word(op))
    fast = MacDatapath.evaluate(opa, opb, ctrl, acc_a, acc_b)
    trace = {}
    slow = MacDatapath.evaluate(opa, opb, ctrl, acc_a, acc_b, trace=trace)
    assert (fast.acc_a, fast.acc_b, fast.limited) == \
        (slow.acc_a, slow.acc_b, slow.limited)
    assert trace  # the traced path actually traced


# ----------------------------------------------------------------------
# MAC semantics against a from-first-principles model.
# ----------------------------------------------------------------------
@settings(max_examples=150)
@given(st.sampled_from(OPCODES), WORD8, WORD8, WORD18, WORD18)
def test_mac_matches_word_level_recomputation(op, opa, opb, acc_a, acc_b):
    cw = control_word(op)
    result = MacDatapath.evaluate(
        opa, opb, MacControls.from_control_word(cw), acc_a, acc_b
    )
    product = multiplier_reference(opa, opb)
    x = 0 if cw.muxa_zero else product
    acc_in = acc_b if cw.accsel else acc_a
    shifted = shifter_reference(acc_in, opa & 0xF, cw.shmode)
    y = shifted if cw.muxb_shift else 0
    r = to_unsigned(to_signed(y, 18) - to_signed(x, 18)
                    if cw.sub else to_signed(y, 18) + to_signed(x, 18), 18)
    t = truncater_reference(r, cw.trunc)
    expect_a, expect_b = acc_a, acc_b
    if cw.acc_we:
        if cw.accsel:
            expect_b = t
        else:
            expect_a = t
    assert result.acc_a == expect_a
    assert result.acc_b == expect_b
    assert result.limited == limiter_reference(
        expect_b if cw.accsel else expect_a
    )


# ----------------------------------------------------------------------
# Pipeline semantics: with dependencies spaced out, the pipelined core
# computes exactly what a plain sequential interpreter computes.
# ----------------------------------------------------------------------
def sequential_interpreter(instructions):
    """An unpipelined architectural model: one instruction at a time."""
    regs = [0] * 16
    acc_a = acc_b = 0
    outputs = []
    for instr in instructions:
        cw = control_word(instr.opcode)
        result = MacDatapath.evaluate(
            regs[instr.rega], regs[instr.regb],
            MacControls.from_control_word(cw), acc_a, acc_b,
        )
        acc_a, acc_b = result.acc_a, result.acc_b
        buffer = instr.imm if cw.buf_imm else regs[instr.regb]
        wb = buffer if cw.mux7_buffer else result.limited
        if cw.out_en:
            outputs.append(wb)
        if cw.reg_we:
            regs[instr.dest] = wb
    return regs, acc_a, acc_b, outputs


_SPACED_PROGRAM = st.lists(
    st.tuples(st.sampled_from(OPCODES), st.integers(0, 15),
              st.integers(0, 15), st.integers(0, 15), WORD8),
    min_size=1, max_size=12,
)


@settings(max_examples=40, deadline=None)
@given(_SPACED_PROGRAM)
def test_pipeline_matches_sequential_semantics(raw):
    instructions = []
    for op, rega, regb, dest, imm in raw:
        if op is Opcode.LDI:
            instructions.append(Instruction(op, imm=imm, dest=dest))
        else:
            instructions.append(Instruction(op, rega=rega, regb=regb,
                                            dest=dest))
    # Space instructions with NOPs so no forwarding path is exercised:
    # both models must then agree exactly.
    spaced = []
    for instr in instructions:
        spaced.append(instr)
        spaced.extend([Instruction(Opcode.NOP)] * 3)
    pipeline_outputs = []
    core = DspCore()
    words = [encode(i) for i in spaced] + \
        [encode(Instruction(Opcode.NOP))] * 4
    for word in words:
        result = core.step(word)
        if result.out_valid:
            pipeline_outputs.append(result.out_value)
    regs, acc_a, acc_b, outputs = sequential_interpreter(instructions)
    assert core.state.regs == regs
    assert core.state.acc_a == acc_a
    assert core.state.acc_b == acc_b
    assert pipeline_outputs == outputs


# ----------------------------------------------------------------------
# Fault simulation: detection is monotone in the pattern set.
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_fault_detection_monotone(seed):
    nl = make_addsub(4)
    sim = CombFaultSimulator(nl)
    rng = random.Random(seed)

    def block(n):
        return {
            "a": [rng.randrange(16) for _ in range(n)],
            "b": [rng.randrange(16) for _ in range(n)],
            "sub": [rng.randrange(2) for _ in range(n)],
        }

    first = block(8)
    second = block(8)
    short = sim.run_with_dropping([first])
    rng = random.Random(seed)  # same first block again
    longer = sim.run_with_dropping([block(8), second])
    detected_short = {f for f, t in short.items() if t is not None}
    detected_long = {f for f, t in longer.items() if t is not None}
    assert detected_short <= detected_long
    # First-detection indices agree for the shared prefix.
    for fault in detected_short:
        assert longer[fault] == short[fault]


# ----------------------------------------------------------------------
# Template architecture: masking is a bijection on register identities.
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.integers(1, 10), st.integers(1, 255), st.integers(1, 65535))
def test_template_masking_preserves_structure(n_iter, seed2, seed1):
    from repro.bist.lfsr import Lfsr
    program = [
        RandomLoad(0), RandomLoad(1),
        Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
        Instruction(Opcode.OUT, regb=2),
    ]
    arch = TemplateArchitecture(
        program, lfsr1=Lfsr(16, seed=seed1), lfsr2=Lfsr(8, seed=seed2)
    )
    words = arch.expand(n_iter)
    assert len(words) == 4 * n_iter
    for i in range(0, len(words), 4):
        ld0, ld1, mpy, out = (decode(w) for w in words[i:i + 4])
        # Opcodes survive masking untouched.
        assert ld0.opcode is Opcode.LDI and mpy.opcode is Opcode.MPYA
        # Dataflow consistency under the XOR mask.
        assert {mpy.rega, mpy.regb} == {ld0.dest, ld1.dest}
        assert out.regb == mpy.dest
        # The two loads land in different registers (0^m != 1^m).
        assert ld0.dest != ld1.dest


# ----------------------------------------------------------------------
# Core determinism and state isolation.
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 2**17 - 1), min_size=1, max_size=30))
def test_core_is_deterministic(words):
    a = DspCore()
    b = DspCore()
    outs_a = [a.step(w).port for w in words]
    outs_b = [b.step(w).port for w in words]
    assert outs_a == outs_b
    assert a.state.regs == b.state.regs
    assert a.state.acc_a == b.state.acc_a


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 2**17 - 1), min_size=2, max_size=20),
       st.integers(0, 2**17 - 1))
def test_forked_state_does_not_leak(words, extra):
    core = DspCore()
    for word in words:
        core.step(word)
    snapshot = core.state.copy()
    fork = DspCore(state=core.state.copy())
    fork.step(extra)
    assert core.state.regs == snapshot.regs
    assert core.state.acc_a == snapshot.acc_a
    assert core.state.macreg == snapshot.macreg
