"""Unit tests for the Netlist container: construction, levelisation, validation."""

import pytest

from repro.logic.gates import GateType
from repro.logic.netlist import Netlist


def small_netlist():
    """c = a AND b; d = NOT c; one DFF q <- d."""
    nl = Netlist("small")
    a = nl.add_net("a")
    b = nl.add_net("b")
    c = nl.add_net("c")
    d = nl.add_net("d")
    q = nl.add_net("q")
    nl.add_input(a)
    nl.add_input(b)
    nl.add_gate(GateType.AND, c, (a, b))
    nl.add_gate(GateType.NOT, d, (c,))
    nl.add_dff(q, d, init=1)
    nl.add_output(d)
    return nl


def test_net_lookup():
    nl = small_netlist()
    assert nl.net_id("a") == 0
    assert nl.net_names[nl.net_id("d")] == "d"
    assert nl.has_net("q")
    assert not nl.has_net("nope")


def test_duplicate_net_name_rejected():
    nl = Netlist()
    nl.add_net("x")
    with pytest.raises(ValueError):
        nl.add_net("x")


def test_double_driver_rejected():
    nl = Netlist()
    a = nl.add_net("a")
    c = nl.add_net("c")
    nl.add_input(a)
    nl.add_gate(GateType.BUF, c, (a,))
    with pytest.raises(ValueError):
        nl.add_gate(GateType.NOT, c, (a,))


def test_gate_cannot_drive_dff_q():
    nl = Netlist()
    a = nl.add_net("a")
    q = nl.add_net("q")
    nl.add_input(a)
    nl.add_dff(q, a)
    with pytest.raises(ValueError):
        nl.add_gate(GateType.BUF, q, (a,))


def test_levelize_orders_dependencies():
    nl = small_netlist()
    order = nl.levelize()
    names = [nl.net_names[g.output] for g in order]
    assert names.index("c") < names.index("d")


def test_levelize_detects_loop():
    nl = Netlist()
    a = nl.add_net("a")
    b = nl.add_net("b")
    c = nl.add_net("c")
    nl.add_input(a)
    nl.add_gate(GateType.AND, b, (a, c))
    nl.add_gate(GateType.BUF, c, (b,))
    with pytest.raises(ValueError, match="loop|undriven"):
        nl.levelize()


def test_dff_breaks_loop():
    """Feedback through a DFF is sequential, not a combinational loop."""
    nl = Netlist()
    a = nl.add_net("a")
    d = nl.add_net("d")
    q = nl.add_net("q")
    nl.add_input(a)
    nl.add_dff(q, d)
    nl.add_gate(GateType.XOR, d, (a, q))
    nl.add_output(q)
    nl.validate()


def test_validate_catches_undriven():
    nl = Netlist()
    a = nl.add_net("a")
    floating = nl.add_net("floating")
    c = nl.add_net("c")
    nl.add_input(a)
    nl.add_gate(GateType.AND, c, (a, floating))
    nl.add_output(c)
    with pytest.raises(ValueError, match="undriven"):
        nl.validate()


def test_stats():
    stats = small_netlist().stats()
    assert stats.n_gates == 2
    assert stats.n_dffs == 1
    assert stats.n_inputs == 2
    assert stats.n_outputs == 1
    assert "small" in str(stats)


def test_fanout_map():
    nl = small_netlist()
    fanout = nl.fanout_map()
    c = nl.net_id("c")
    assert len(fanout[c]) == 1
    assert nl.gates[fanout[c][0]].kind is GateType.NOT


def test_transitive_fanout():
    nl = small_netlist()
    cone = nl.transitive_fanout_gates(nl.net_id("a"))
    outputs = {nl.net_names[g.output] for g in cone}
    assert outputs == {"c", "d"}


def test_is_state_net():
    nl = small_netlist()
    assert nl.is_state_net(nl.net_id("q"))
    assert not nl.is_state_net(nl.net_id("c"))


def test_bus_registration():
    nl = Netlist()
    nets = [nl.add_net(f"v[{i}]") for i in range(4)]
    nl.add_bus("v", nets)
    assert nl.buses["v"] == nets
    with pytest.raises(ValueError):
        nl.add_bus("v", nets)


def test_construction_errors_are_config_errors():
    """Rejections carry ConfigError (still a ValueError for back-compat)."""
    from repro.runtime.errors import ConfigError
    nl = Netlist()
    a = nl.add_net("a")
    c = nl.add_net("c")
    nl.add_input(a)
    nl.add_gate(GateType.BUF, c, (a,))
    with pytest.raises(ConfigError):
        nl.add_gate(GateType.NOT, c, (a,))
    with pytest.raises(ConfigError):
        nl.add_net("a")
    nl.add_bus("v", [a])
    with pytest.raises(ConfigError):
        nl.add_bus("v", [a])


def test_validate_counts_duplicate_drivers():
    """validate() catches multi-driven nets even when gates were appended
    directly (bypassing add_gate's incremental guard)."""
    from repro.logic.netlist import Gate
    from repro.runtime.errors import ConfigError
    nl = Netlist()
    a = nl.add_net("a")
    b = nl.add_net("b")
    y = nl.add_net("y")
    nl.add_input(a)
    nl.add_input(b)
    nl.add_gate(GateType.AND, y, (a, b))
    nl.gates.append(Gate(kind=GateType.OR, output=y, inputs=(a, b)))
    nl._topo_cache = None
    nl.add_output(y)
    with pytest.raises(ConfigError, match="2 drivers"):
        nl.validate()


def test_dff_init_none_is_preserved():
    """init=None models unknown power-up state (exported as 1'bx)."""
    nl = Netlist()
    d = nl.add_net("d")
    q = nl.add_net("q")
    nl.add_input(d)
    nl.add_dff(q, d, init=None)
    nl.add_output(q)
    assert nl.dffs[0].init is None
    nl.validate()  # structurally fine; NET004 is the linter's concern
    from repro.logic.export import to_verilog
    assert "1'bx" in to_verilog(nl, "power_up")
