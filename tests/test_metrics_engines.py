"""Tests for the controllability/observability engines on the DSP core.

These assert the *structural* properties the paper's Table 2 exhibits —
which columns appear for which rows, the 0-vs-R sensitivity, the key
observability patterns — using small sample counts for speed.
"""

import random

import pytest

from repro.dsp.isa import Opcode
from repro.metrics.controllability import (
    EX_CYCLE,
    ID_CYCLE,
    WB_CYCLE,
    ControllabilityEngine,
    InstructionVariant,
    component_cycle,
    default_variants,
    trace_variant,
)
from repro.metrics.observability import ObservabilityEngine, observation_wrapper
from repro.metrics.table import MetricsCell, MetricsTable, build_metrics_table


@pytest.fixture(scope="module")
def c_engine():
    return ControllabilityEngine(n_samples=80, seed=5)


@pytest.fixture(scope="module")
def o_engine():
    return ObservabilityEngine(n_good=4, seed=6)


def c_of(c_engine, op, state):
    return c_engine.measure(InstructionVariant(op, state))


def test_variant_validation_and_labels():
    with pytest.raises(ValueError):
        InstructionVariant(Opcode.MPYA, "X")
    assert InstructionVariant(Opcode.MACA_ADD, "R").label == "MacA+R"
    assert InstructionVariant(Opcode.LDI, "0").label == "load"


def test_default_variants_cover_paper_rows():
    labels = {v.label for v in default_variants()}
    for expected in ("load", "loadR", "MpyA", "MpyAR", "MacA+", "MacA+R",
                     "MactB-R", "ShiftA", "MpyshiftmacB", "Out", "OutrA"):
        assert expected in labels


def test_shifter_controllability_depends_on_acc_state(c_engine):
    """The paper's signature 0.18 -> 0.99 jump between load and loadR."""
    zero = c_of(c_engine, Opcode.LDI, "0")[("shifter", 0)]
    rand = c_of(c_engine, Opcode.LDI, "R")[("shifter", 0)]
    assert zero < 0.3
    assert rand > 0.9


def test_multiplier_always_well_controlled(c_engine):
    for op in (Opcode.LDI, Opcode.MPYA, Opcode.MACB_SUB):
        c = c_of(c_engine, op, "0")[("multiplier", 0)]
        assert c > 0.9, op


def test_shift_modes_2_3_never_measured(c_engine):
    for op in (Opcode.MPYA, Opcode.SHIFTA, Opcode.LDI):
        for state in ("0", "R"):
            measured = c_of(c_engine, op, state)
            assert ("shifter", 2) not in measured
            assert ("shifter", 3) not in measured


def test_shift_instruction_uses_mode_1(c_engine):
    measured = c_of(c_engine, Opcode.SHIFTA, "R")
    assert ("shifter", 1) in measured
    assert measured[("shifter", 1)] > 0.9


def test_addsub_mode_follows_instruction(c_engine):
    add = c_of(c_engine, Opcode.MACA_ADD, "R")
    sub = c_of(c_engine, Opcode.MACA_SUB, "R")
    assert ("addsub", 0) in add and ("addsub", 1) not in add
    assert ("addsub", 1) in sub and ("addsub", 0) not in sub


def test_observability_zero_without_propagation(o_engine):
    """Non-writing instructions propagate nothing from the MAC path."""
    o = o_engine.measure(InstructionVariant(Opcode.LDI, "R"))
    assert o[("multiplier", 0)] == 0.0
    assert o[("shifter", 0)] == 0.0


def test_observability_mpy_propagates_multiplier(o_engine):
    o = o_engine.measure(InstructionVariant(Opcode.MPYA, "0"))
    assert o[("multiplier", 0)] > 0.3
    assert o[("macreg", 0)] > 0.9


def test_accumulator_observability_is_zero_per_instruction(o_engine):
    """The paper's AccA column: O = 0.00 on every single-instruction row;
    accumulator errors need a follow-up observation sequence (Phase 2)."""
    for op in (Opcode.MPYA, Opcode.MACA_ADD, Opcode.LDI):
        o = o_engine.measure(InstructionVariant(op, "0"))
        assert o[("acca", 0)] == 0.0, op


def test_accumulator_observable_with_extra_wrapper(o_engine):
    """Adding 'outa' (Phase 2's observation sequence) exposes AccA."""
    from repro.dsp.isa import Instruction
    o = o_engine.measure(
        InstructionVariant(Opcode.MPYA, "0"),
        extra_wrapper=[Instruction(Opcode.OUTA)],
    )
    assert o[("acca", 0)] > 0.5


def test_buffer_observable_via_load(o_engine):
    o = o_engine.measure(InstructionVariant(Opcode.LDI, "0"))
    assert o[("buffer", 0)] > 0.9


def test_component_cycle_pipeline_stages():
    """The ID/EX/WB assignment mirrors the core's 4-stage pipeline."""
    for name in ("decoder", "regread_a", "regread_b"):
        assert component_cycle(name) == ID_CYCLE
    assert component_cycle("mux7") == WB_CYCLE
    for name in ("multiplier", "shifter", "addsub", "limiter",
                 "acca", "accb", "macreg", "buffer"):
        assert component_cycle(name) == EX_CYCLE


def test_component_cycle_matches_trace_activity():
    """Each component's activity really appears at its declared cycle."""
    from repro.dsp.components import COMPONENTS
    traces = trace_variant(InstructionVariant(Opcode.MPYA, "R"),
                           random.Random(11))
    seen = 0
    for spec in COMPONENTS:
        activity = traces[component_cycle(spec.name)].get(spec.name)
        if activity is not None:
            seen += 1
    # MPYA exercises the full MAC path plus the ID-stage components.
    assert seen >= 5


class _ZeroRandom(random.Random):
    """Degenerate stream: every draw is 0 — zero-entropy operands."""

    def randrange(self, *args, **kwargs):
        return 0


def test_zero_entropy_operands_give_zero_controllability():
    """With constant operands the entropy estimator must report C=0
    rather than crashing or emitting NaN."""
    engine = ControllabilityEngine(
        n_samples=8, seed=1, rng_factory=lambda label: _ZeroRandom(),
    )
    measured = engine.measure(InstructionVariant(Opcode.MPYA, "0"))
    assert measured, "MPYA must still exercise the MAC path"
    for key, c in measured.items():
        assert c == pytest.approx(0.0), key


def test_observation_wrapper_for_register_writers():
    """Register-writing rows get the 3x 'out dest' propagation tail
    (bypass, temp register, register file)."""
    wrapper = observation_wrapper(InstructionVariant(Opcode.LDI, "0"))
    assert len(wrapper) == 3
    assert all(i.opcode is Opcode.OUT for i in wrapper)
    assert len({i.regb for i in wrapper}) == 1


def test_observation_wrapper_empty_for_out_family():
    """The out family (including the accumulator-only OUTA/OUTB rows)
    needs no wrapper: the instruction *is* the propagation.  The NOP
    row writes nothing, so it gets none either."""
    for op in (Opcode.OUT, Opcode.OUTA, Opcode.OUTB, Opcode.NOP):
        variant = InstructionVariant(op, "0")
        assert observation_wrapper(variant) == [], op
    # MAC-family rows write their destination register and therefore do
    # get the propagation tail.
    assert observation_wrapper(InstructionVariant(Opcode.MACA_ADD, "0"))


def test_metrics_table_assembly():
    variants = [InstructionVariant(Opcode.MPYA, "0"),
                InstructionVariant(Opcode.MPYA, "R")]
    table = build_metrics_table(
        variants=variants,
        n_controllability_samples=40,
        n_observability_good=2,
    )
    assert table.rows == variants
    assert table.fault_counts["multiplier"] > 500
    cell = table.cell(variants[0], ("multiplier", 0))
    assert cell is not None
    assert 0.0 <= cell.c <= 1.0 and 0.0 <= cell.o <= 1.0
    rendered = table.render(max_columns=5)
    assert "multiplier" in rendered
    assert "#faults" in rendered


def test_metrics_table_threshold_view():
    table = MetricsTable(rows=[], columns=[("multiplier", 0)])
    strict = table.with_thresholds(0.9, 0.9)
    assert strict.c_theta == 0.9
    assert strict.columns == table.columns
    cell = MetricsCell(c=0.8, o=0.6)
    assert cell.covered(0.7, 0.5)
    assert not cell.covered(0.9, 0.5)


def test_metrics_table_cell_guard():
    table = MetricsTable(rows=[], columns=[("multiplier", 0)])
    with pytest.raises(KeyError):
        table.set_cell(InstructionVariant(Opcode.MPYA, "0"),
                       ("bogus", 9), MetricsCell(1, 1))
