"""Tests for effect-cause fault diagnosis."""

import pytest

from repro.bist.template import RandomLoad, TemplateArchitecture
from repro.dsp.isa import Instruction, Opcode
from repro.faults.diagnosis import FaultDiagnoser
from repro.faults.hierarchical import (
    ComponentFault,
    DspFaultUniverse,
    StorageFault,
)


@pytest.fixture(scope="module")
def diagnoser():
    program = [
        RandomLoad(0), RandomLoad(1),
        Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
        Instruction(Opcode.OUT, regb=2),
        Instruction(Opcode.MACB_ADD, rega=0, regb=1, dest=3),
        Instruction(Opcode.OUT, regb=3),
        Instruction(Opcode.OUTA),
        Instruction(Opcode.OUTB),
    ]
    words = TemplateArchitecture(program).expand(12)
    universe = DspFaultUniverse(
        components=["mux7", "macreg", "limiter", "acca"],
        include_regfile=False,
    )
    return FaultDiagnoser(words, universe=universe)


def test_clean_response_yields_no_candidates(diagnoser):
    assert diagnoser.diagnose(diagnoser.golden) == []


def test_storage_fault_diagnosed_top1(diagnoser):
    fault = StorageFault(("macreg",), "q", 3, 1)
    observed = diagnoser.faulty_response(fault)
    assert observed != diagnoser.golden
    ranked = diagnoser.diagnose(observed)
    assert ranked, "no candidates returned"
    assert ranked[0].score == 1.0
    # The top candidate predicts the observation exactly; it is the fault
    # itself or an equivalent one.
    assert diagnoser.faulty_response(ranked[0].fault) == observed


def test_component_fault_diagnosed(diagnoser):
    detected = [f for f in diagnoser.dictionary.detected
                if isinstance(f, ComponentFault)
                and f.component == "limiter"]
    fault = detected[0]
    observed = diagnoser.faulty_response(fault)
    ranked = diagnoser.diagnose(observed)
    assert ranked and ranked[0].score == 1.0
    assert diagnoser.faulty_response(ranked[0].fault) == observed


def test_diagnosis_scores_ordered(diagnoser):
    fault = StorageFault(("acca",), "q", 9, 1)
    observed = diagnoser.faulty_response(fault)
    if observed == diagnoser.golden:
        pytest.skip("fault not excited by this stream")
    ranked = diagnoser.diagnose(observed, top_k=8)
    scores = [c.score for c in ranked]
    assert scores == sorted(scores, reverse=True)


def test_out_of_model_defect_ranks_low(diagnoser):
    """Corrupting one random cycle matches no modelled fault exactly."""
    observed = list(diagnoser.golden)
    # flip a bit at an observed (non-zero) cycle
    idx = next(i for i, v in enumerate(observed) if v)
    observed[idx] ^= 0x01
    ranked = diagnoser.diagnose(observed)
    assert all(c.score < 1.0 for c in ranked)


def test_length_mismatch_rejected(diagnoser):
    with pytest.raises(ValueError):
        diagnoser.diagnose([0, 1, 2])


def test_candidate_describe(diagnoser):
    fault = StorageFault(("macreg",), "q", 0, 0)
    observed = diagnoser.faulty_response(fault)
    ranked = diagnoser.diagnose(observed)
    if ranked:
        text = ranked[0].describe()
        assert "%" in text


def test_signature_only_diagnosis(diagnoser):
    """With only interval signatures, diagnosis still brackets the defect."""
    from repro.bist.signatures import interval_signatures
    fault = StorageFault(("macreg",), "q", 3, 1)
    observed = diagnoser.faulty_response(fault)
    observed_sigs = interval_signatures(observed, interval=8)
    candidates = diagnoser.diagnose_from_signatures(observed_sigs)
    assert candidates
    true_cycle = diagnoser.dictionary.first_detect[fault]
    window_cycles = {c.first_mismatch for c in candidates}
    assert true_cycle in window_cycles


def test_signature_diagnosis_clean_stream(diagnoser):
    from repro.bist.signatures import interval_signatures
    sigs = interval_signatures(diagnoser.golden, interval=8)
    assert diagnoser.diagnose_from_signatures(sigs) == []
