"""Property tests over :class:`CoreSpec` validation and the family builder.

Two invariants:

* every *legal* spec builds a netlist that passes structural validation
  and carries no ERROR-level lint findings;
* every *illegal* spec (one axis pushed off its legal range) raises
  :class:`ConfigError` from ``validate()`` and never reaches the builder.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.dsp.family import (
    ADDER_STYLES,
    CoreBuild,
    CoreSpec,
    N_REGISTERS_CHOICES,
    OPERAND_WIDTH_CHOICES,
    PIPELINE_DEPTH_CHOICES,
    SHIFTER_STYLES,
)
from repro.lint.findings import Severity
from repro.lint.netlist_rules import lint_netlist
from repro.runtime.errors import ConfigError


@st.composite
def legal_specs(draw):
    width = draw(st.sampled_from(OPERAND_WIDTH_CHOICES))
    min_acc = 2 * width + 2
    return CoreSpec(
        n_registers=draw(st.sampled_from(N_REGISTERS_CHOICES)),
        operand_width=width,
        acc_width=draw(st.integers(min_acc, 32)),
        pipeline_depth=draw(st.sampled_from(PIPELINE_DEPTH_CHOICES)),
        shifter=draw(st.sampled_from(SHIFTER_STYLES)),
        adder=draw(st.sampled_from(ADDER_STYLES)),
        has_truncater=draw(st.booleans()),
        has_limiter=draw(st.booleans()),
    )


@st.composite
def illegal_specs(draw):
    """A legal spec with exactly one axis pushed off its legal range."""
    spec = draw(legal_specs())
    corruption = draw(st.sampled_from([
        "n_registers", "operand_width", "acc_narrow", "acc_wide",
        "pipeline_depth", "shifter", "adder",
    ]))
    if corruption == "n_registers":
        bad = {"n_registers": draw(st.sampled_from([0, 3, 5, 32]))}
    elif corruption == "operand_width":
        bad = {"operand_width": draw(st.sampled_from([0, 3, 7, 16]))}
    elif corruption == "acc_narrow":
        # Narrower than the sign-extended MAC product plus guard bits.
        min_acc = 2 * spec.operand_width + 2
        bad = {"acc_width": draw(st.integers(0, min_acc - 1))}
    elif corruption == "acc_wide":
        bad = {"acc_width": draw(st.integers(33, 64))}
    elif corruption == "pipeline_depth":
        bad = {"pipeline_depth": draw(st.sampled_from([0, 2, 6]))}
    elif corruption == "shifter":
        bad = {"shifter": draw(st.sampled_from(["funnel", "", "BARREL"]))}
    else:
        bad = {"adder": draw(st.sampled_from(["kogge-stone", "", "Ripple"]))}
    return CoreSpec(**{**spec.to_doc(), **bad})


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(legal_specs())
def test_legal_specs_build_clean_netlists(spec):
    build = CoreBuild.get(spec.validate())
    netlist = build.netlist
    netlist.validate()          # raises on structural defects
    report = lint_netlist(netlist, min_severity=Severity.ERROR)
    errors = [f for f in report if f.severity >= Severity.ERROR]
    assert not errors, \
        f"{spec.label()}: {[f.rule for f in errors]}"
    # The ISA surface is the same across the family: every opcode must
    # decode, and the netlist must expose the architectural buses.
    assert "out" in netlist.buses and "out_valid" in netlist.buses
    assert build.area > 0


@settings(max_examples=80, deadline=None)
@given(illegal_specs())
def test_illegal_specs_never_build(spec):
    with pytest.raises(ConfigError):
        spec.validate()
    with pytest.raises(ConfigError):
        CoreBuild(spec)


def test_validate_returns_self():
    spec = CoreSpec.paper()
    assert spec.validate() is spec


def test_bool_axes_rejected_when_not_bool():
    doc = CoreSpec.paper().to_doc()
    doc["has_truncater"] = 1
    with pytest.raises(ConfigError):
        CoreSpec(**doc).validate()
