"""Tests for the structural testability engine (SCOAP / COP).

Three layers of pinning:

* textbook SCOAP and COP values on hand-built netlists (exact);
* structural invariants (monotonicity, unbounded propagation,
  sequential-depth increments);
* the differential gate from ISSUE 8 — COP-predicted-hard fault sites
  must rank-correlate positively with empirical first-detect indices
  from the batched fault simulator, on every combinational paper
  component and on seeded random netlists.
"""

import random

import pytest

from repro import obs
from repro.analysis.testability import (
    DEFAULT_SEQ_COST,
    UNBOUNDED,
    analyze_testability,
    rank_correlation,
    summarize_testability,
)
from repro.dsp.components import COMPONENTS
from repro.faults.combsim import CombFaultSimulator
from repro.faults.model import Fault, collapse_faults
from repro.logic.builder import NetlistBuilder


# ----------------------------------------------------------------------
# SCOAP controllability / observability — textbook values
# ----------------------------------------------------------------------
def test_scoap_primary_input_costs():
    b = NetlistBuilder("pi")
    a = b.input("a")
    b.output(b.buf(a))
    analysis = analyze_testability(b.finish())
    assert analysis.cc0[a] == 1.0
    assert analysis.cc1[a] == 1.0


def test_scoap_and_gate():
    b = NetlistBuilder("and2")
    a = b.input("a")
    c = b.input("b")
    y = b.and_(a, c)
    b.output(y)
    analysis = analyze_testability(b.finish())
    # cc1 = sum of input cc1s + 1; cc0 = cheapest controlling input + 1.
    assert analysis.cc1[y] == 3.0
    assert analysis.cc0[y] == 2.0
    # Observing `a` through the AND needs b=1 (non-controlling).
    assert analysis.co[a] == 2.0
    assert analysis.co[y] == 0.0  # primary output


def test_scoap_or_gate_dual():
    b = NetlistBuilder("or2")
    a = b.input("a")
    c = b.input("b")
    y = b.or_(a, c)
    b.output(y)
    analysis = analyze_testability(b.finish())
    assert analysis.cc0[y] == 3.0
    assert analysis.cc1[y] == 2.0
    assert analysis.co[a] == 2.0


def test_scoap_xor_gate():
    b = NetlistBuilder("xor2")
    a = b.input("a")
    c = b.input("b")
    y = b.xor(a, c)
    b.output(y)
    analysis = analyze_testability(b.finish())
    # Both polarities need both inputs justified: min combination + 1.
    assert analysis.cc0[y] == 3.0
    assert analysis.cc1[y] == 3.0
    # XOR always propagates: co = co(y) + cc of the cheaper side value + 1.
    assert analysis.co[a] == 2.0


def test_scoap_not_swaps():
    b = NetlistBuilder("inv")
    a = b.input("a")
    y = b.not_(a)
    b.output(y)
    analysis = analyze_testability(b.finish())
    assert analysis.cc0[y] == 2.0
    assert analysis.cc1[y] == 2.0
    assert analysis.co[a] == 1.0


def test_scoap_constants_are_unbounded():
    b = NetlistBuilder("tied")
    a = b.input("a")
    tie = b.const0()
    y = b.and_(a, tie)
    b.output(y)
    analysis = analyze_testability(b.finish())
    assert analysis.cc0[tie] == 1.0
    assert analysis.cc1[tie] == UNBOUNDED
    # The AND can never be driven to 1, and `a` can never be observed.
    assert analysis.cc1[y] == UNBOUNDED
    assert analysis.co[a] == UNBOUNDED


def test_scoap_dff_sequential_depth():
    b = NetlistBuilder("reg")
    d = b.input("d")
    q = b.dff(d, init=0)
    b.output(q)
    analysis = analyze_testability(b.finish())
    # Reset supplies the init value at cost 1; the other polarity pays
    # the through-path cc plus one sequential frame.
    assert analysis.cc0[q] == 1.0
    assert analysis.cc1[q] == 1.0 + DEFAULT_SEQ_COST
    # Observing d means waiting one frame for it to reach q.
    assert analysis.co[d] == DEFAULT_SEQ_COST


def test_scoap_seq_cost_parameter():
    b = NetlistBuilder("reg")
    d = b.input("d")
    q = b.dff(d, init=0)
    b.output(q)
    analysis = analyze_testability(b.finish(), seq_cost=3.0)
    assert analysis.cc1[q] == 4.0
    assert analysis.co[d] == 3.0


def test_scoap_chain_depth_accumulates():
    """CC grows along a chain of gates — deeper logic is harder."""
    b = NetlistBuilder("chain")
    net = b.input("a")
    costs = []
    nl_nets = [net]
    for _ in range(5):
        net = b.and_(net, b.input(f"side{len(nl_nets)}"))
        nl_nets.append(net)
    b.output(net)
    analysis = analyze_testability(b.finish())
    costs = [analysis.cc1[n] for n in nl_nets]
    assert costs == sorted(costs)
    assert costs[-1] > costs[0]


# ----------------------------------------------------------------------
# COP probabilities
# ----------------------------------------------------------------------
def test_cop_and_gate_exact():
    b = NetlistBuilder("and2")
    a = b.input("a")
    c = b.input("b")
    y = b.and_(a, c)
    b.output(y)
    analysis = analyze_testability(b.finish())
    assert analysis.p1[a] == pytest.approx(0.5)
    assert analysis.p1[y] == pytest.approx(0.25)
    # a is observed when b=1: probability 0.5.
    assert analysis.obs[a] == pytest.approx(0.5)
    assert analysis.obs[y] == pytest.approx(1.0)


def test_cop_xor_gate_exact():
    b = NetlistBuilder("xor2")
    a = b.input("a")
    c = b.input("b")
    y = b.xor(a, c)
    b.output(y)
    analysis = analyze_testability(b.finish())
    assert analysis.p1[y] == pytest.approx(0.5)
    # XOR propagates unconditionally.
    assert analysis.obs[a] == pytest.approx(1.0)


def test_cop_detection_probability():
    b = NetlistBuilder("and2")
    a = b.input("a")
    c = b.input("b")
    y = b.and_(a, c)
    b.output(y)
    analysis = analyze_testability(b.finish())
    # sa0 at y needs y=1 (p 0.25) and y observable (p 1).
    assert analysis.detection_probability(Fault(y, 0)) == pytest.approx(0.25)
    # sa1 at y needs y=0 (p 0.75).
    assert analysis.detection_probability(Fault(y, 1)) == pytest.approx(0.75)


def test_cop_wide_and_is_random_resistant():
    b = NetlistBuilder("wide")
    ins = [b.input(f"x{k}") for k in range(20)]
    y = b.and_(*ins)
    b.output(y)
    analysis = analyze_testability(b.finish())
    assert analysis.p1[y] == pytest.approx(2.0 ** -20)
    score = analysis.score(Fault(y, 0))
    assert score.detection_probability < 1e-5
    assert not score.statically_untestable


def test_fault_score_untestable_flag():
    b = NetlistBuilder("tied")
    a = b.input("a")
    y = b.and_(a, b.const0())
    b.output(y)
    analysis = analyze_testability(b.finish())
    assert analysis.score(Fault(y, 0)).statically_untestable
    assert not analysis.score(Fault(y, 1)).statically_untestable


def test_analysis_emits_obs_counters():
    b = NetlistBuilder("obsd")
    a = b.input("a")
    b.output(b.not_(a))
    nl = b.finish()
    with obs.enabled_session(trace=False, metrics=True,
                             profile=False) as session:
        analyze_testability(nl)
        counters = session.registry.snapshot()["counters"]
    assert counters.get("analysis.testability.analyses") == 1
    assert counters.get("analysis.testability.nets", 0) >= nl.n_nets


# ----------------------------------------------------------------------
# Rank correlation helper
# ----------------------------------------------------------------------
def test_rank_correlation_perfect():
    assert rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) \
        == pytest.approx(1.0)
    assert rank_correlation([1, 2, 3, 4], [40, 30, 20, 10]) \
        == pytest.approx(-1.0)


def test_rank_correlation_ties_and_constants():
    assert rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0
    assert rank_correlation([], []) == 0.0
    # Ties get average ranks; still a valid coefficient in [-1, 1].
    rho = rank_correlation([1, 2, 2, 3], [1, 2, 3, 4])
    assert -1.0 <= rho <= 1.0
    assert rho > 0.5


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
def test_summarize_testability_fields():
    b = NetlistBuilder("sum")
    a = b.input("a")
    c = b.input("b")
    b.output(b.and_(a, c))
    nl = b.finish()
    faults = collapse_faults(nl)
    summary = summarize_testability("sum", nl, faults.faults)
    assert summary.name == "sum"
    assert summary.n_faults == len(faults.faults)
    assert summary.n_unbounded == 0
    doc = summary.to_json()
    assert doc["name"] == "sum"
    assert len(summary.to_row()) == 10


# ----------------------------------------------------------------------
# Differential gate: static predictions vs batched fault simulation
# ----------------------------------------------------------------------
N_PATTERNS = 1024
BLOCK = 256
MIN_RHO = 0.05


def _first_detect_indices(nl, faults, seed=7):
    """Empirical first-detect index per fault under random patterns,
    censored at N_PATTERNS for never-detected faults."""
    rng = random.Random(seed)
    input_buses = [(name, nets) for name, nets in nl.buses.items()
                   if all(n in nl.inputs for n in nets)]
    blocks = []
    for _ in range(N_PATTERNS // BLOCK):
        blocks.append({name: [rng.randrange(1 << len(nets))
                              for _ in range(BLOCK)]
                       for name, nets in input_buses})
    sim = CombFaultSimulator(nl, faults, engine="batched")
    first = sim.run_with_dropping(blocks)
    return {f: (N_PATTERNS if t is None else t) for f, t in first.items()}


def _static_vs_dynamic_rho(nl):
    faults = collapse_faults(nl)
    analysis = analyze_testability(nl)
    first = _first_detect_indices(nl, faults)
    hardness = []
    empirical = []
    for fault in faults.faults:
        hardness.append(-analysis.detection_probability(fault))
        empirical.append(first[fault])
    # Higher static hardness should mean a later (or no) first detect.
    return rank_correlation(hardness, empirical)


@pytest.mark.parametrize("spec", [
    pytest.param(s, id=s.name) for s in COMPONENTS
    if s.factory is not None and s.kind == "comb"
])
def test_predicted_hardness_tracks_first_detect_on_components(spec):
    rho = _static_vs_dynamic_rho(spec.netlist())
    assert rho > MIN_RHO, (
        f"{spec.name}: COP-predicted hardness does not rank-correlate "
        f"with batched first-detect indices (rho={rho:.3f})"
    )


def _random_netlist(seed, n_inputs=12, n_gates=80):
    rng = random.Random(seed)
    b = NetlistBuilder(f"rand{seed}")
    nets = [b.input(f"i{k}") for k in range(n_inputs)]
    for _ in range(n_gates):
        kind = rng.choice(("and", "or", "xor", "not"))
        if kind == "not":
            out = b.not_(rng.choice(nets))
        elif kind == "xor":
            out = b.xor(rng.choice(nets), rng.choice(nets))
        elif kind == "and":
            out = b.and_(rng.choice(nets), rng.choice(nets))
        else:
            out = b.or_(rng.choice(nets), rng.choice(nets))
        nets.append(out)
    used = {i for g in b.netlist.gates for i in g.inputs}
    for net in nets[n_inputs:]:
        if net not in used:
            b.output(net)
    return b.finish()


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_predicted_hardness_tracks_first_detect_on_random_logic(seed):
    rho = _static_vs_dynamic_rho(_random_netlist(seed))
    assert rho > MIN_RHO, f"seed {seed}: rho={rho:.3f}"


def test_statically_untestable_confirmed_by_podem():
    """Every NET011-style candidate on a paper component really is
    untestable: PODEM proves it at a generous backtrack limit."""
    from repro.atpg.podem import Podem
    checked = 0
    for spec in COMPONENTS:
        if spec.factory is None or spec.kind != "comb":
            continue
        nl = spec.netlist()
        analysis = analyze_testability(nl)
        engine = Podem(nl, backtrack_limit=5000)
        for fault in collapse_faults(nl).faults:
            if analysis.score(fault).statically_untestable:
                assert engine.generate(fault).status == "untestable", \
                    f"{spec.name}: {fault.describe(nl)}"
                checked += 1
    assert checked > 0  # the multiplier tie-offs and limiter pads exist


# ----------------------------------------------------------------------
# Guided vs unguided PODEM: verdict parity
# ----------------------------------------------------------------------
def test_guided_and_unguided_verdicts_agree():
    """Guidance may change the search path (and hence which faults
    abort at a tight limit) but must never contradict a proof: a fault
    detected by one engine cannot be proved untestable by the other."""
    from repro.atpg.podem import Podem
    from repro.rtl.arith import make_addsub
    nl = make_addsub(6)
    plain = Podem(nl, backtrack_limit=200)
    guided = Podem(nl, backtrack_limit=200, guided=True)
    proofs = {"detected", "untestable"}
    for fault in collapse_faults(nl).faults:
        a = plain.generate(fault).status
        g = guided.generate(fault).status
        if a in proofs and g in proofs:
            assert a == g, fault.describe(nl)
