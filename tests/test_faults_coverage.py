"""Tests for coverage reports and coverage curves."""

import pytest

from repro.faults.coverage import CoverageReport, coverage_curve


def test_basic_coverages():
    report = CoverageReport(name="x", n_faults=200, n_detected=150,
                            n_untestable=20, n_vectors=1000)
    assert report.fault_coverage == pytest.approx(0.75)
    assert report.test_coverage == pytest.approx(150 / 180)


def test_paper_style_numbers():
    """98.14% FC and 98.33% TC are consistent with a small untestable set."""
    report = CoverageReport(name="paper", n_faults=10000, n_detected=9814,
                            n_untestable=19)
    assert report.fault_coverage == pytest.approx(0.9814)
    assert report.test_coverage == pytest.approx(9814 / 9981, abs=1e-4)


def test_empty_population_is_full_coverage():
    report = CoverageReport(name="empty", n_faults=0, n_detected=0)
    assert report.fault_coverage == 1.0
    assert report.test_coverage == 1.0


def test_test_time_at_500mhz():
    """Paper: 204,000 vectors at 500 MHz = 0.408 ms."""
    report = CoverageReport(name="t", n_faults=1, n_detected=1,
                            n_vectors=204000)
    assert report.test_time_seconds(500e6) == pytest.approx(0.408e-3)
    with pytest.raises(ValueError):
        report.test_time_seconds(0)


def test_merge_reports():
    a = CoverageReport(name="a", n_faults=10, n_detected=8,
                       by_component={"mult": (8, 10)}, n_vectors=5)
    b = CoverageReport(name="b", n_faults=6, n_detected=3,
                       by_component={"mult": (1, 2), "shift": (2, 4)},
                       n_vectors=9)
    merged = a.merged_with(b)
    assert merged.n_faults == 16
    assert merged.n_detected == 11
    assert merged.by_component == {"mult": (9, 12), "shift": (2, 4)}
    assert merged.n_vectors == 9


def test_str_rendering():
    report = CoverageReport(name="demo", n_faults=4, n_detected=2,
                            by_component={"alu": (2, 4)})
    text = str(report)
    assert "demo" in text
    assert "alu" in text
    assert "50.00%" in text


def test_coverage_curve_monotonic():
    first_detect = {f"f{i}": t for i, t in enumerate([0, 0, 3, 7, None])}
    curve = coverage_curve(first_detect, n_vectors=10, step=1)
    values = [v for _, v in curve]
    assert values == sorted(values)
    assert curve[0] == (0, 0.0)
    assert curve[-1][1] == pytest.approx(4 / 5)


def test_coverage_curve_step_and_empty():
    assert coverage_curve({}, 5) == [(5, 1.0)]
    curve = coverage_curve({"a": 1}, n_vectors=4, step=2)
    assert [p for p, _ in curve] == [0, 2, 4]
