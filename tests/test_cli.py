"""Tests for the command-line driver."""

import pytest

from repro.__main__ import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table1_command(capsys):
    assert main(["table1", "--samples", "120", "--good", "6"]) == 0
    out = capsys.readouterr().out
    assert "Mult" in out and "Clear" in out
    assert "Mac R" in out


def test_metrics_command(capsys):
    assert main(["metrics", "--samples", "30", "--good", "2",
                 "--columns", "4"]) == 0
    out = capsys.readouterr().out
    assert "multiplier" in out
    assert "loadR" in out


def test_generate_command(tmp_path, capsys):
    vectors = tmp_path / "v.txt"
    assert main(["generate", "--samples", "30", "--good", "2",
                 "--iterations", "3", "--vectors", str(vectors)]) == 0
    out = capsys.readouterr().out
    assert "Phase 1" in out
    assert "ld rnd" in out
    assert "MISR signature" in out
    assert vectors.exists()
    first = vectors.read_text().splitlines()[0]
    assert len(first.split()[0]) == 17


def test_grade_command(capsys):
    assert main(["grade", "--samples", "30", "--good", "2",
                 "--iterations", "2"]) == 0
    out = capsys.readouterr().out
    assert "faults detected" in out
    assert "500 MHz" in out


def test_grade_command_checkpoint_resume(tmp_path, capsys):
    checkpoint = tmp_path / "grade.jsonl"
    args = ["grade", "--samples", "30", "--good", "2", "--iterations", "2",
            "--checkpoint", str(checkpoint)]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "campaign:" in out and "0 resumed" in out
    assert checkpoint.exists()
    # Resuming the finished campaign re-executes nothing.
    assert main(args + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "resuming" in out
    assert "0 quarantined" in out
    assert "faults detected" in out


def test_resume_requires_checkpoint(capsys):
    assert main(["grade", "--resume"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "--checkpoint" in err


def test_grade_jobs_and_max_units_roundtrip(tmp_path, capsys):
    """`--max-units` interrupts with exit 3; a pooled `--resume` finishes."""
    checkpoint = tmp_path / "grade.jsonl"
    args = ["grade", "--samples", "30", "--good", "2", "--iterations", "2",
            "--jobs", "2", "--checkpoint", str(checkpoint)]
    assert main(args + ["--max-units", "5"]) == 3
    out = capsys.readouterr().out
    assert "interrupted" in out and "--resume" in out
    assert main(args + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "5 resumed" in out
    assert "faults detected" in out
    # The completed campaign leaves no worker shards behind.
    assert list(tmp_path.glob("grade.jsonl.shard-*")) == []


def test_grade_rejects_bad_jobs(capsys):
    assert main(["grade", "--jobs", "zero"]) == 2
    assert "jobs" in capsys.readouterr().err


def test_grade_summary_surfaces_health_counts(tmp_path, capsys):
    """The one-line campaign summary exposes degradation, quarantine,
    retry and leaked-thread accounting at a glance."""
    checkpoint = tmp_path / "grade.jsonl"
    assert main(["grade", "--samples", "30", "--good", "2",
                 "--iterations", "2", "--checkpoint", str(checkpoint)]) == 0
    out = capsys.readouterr().out
    assert "degraded" in out and "quarantined" in out
    assert "retried" in out and "threads leaked" in out


def test_grade_force_overrides_fingerprint_mismatch(tmp_path, capsys):
    checkpoint = tmp_path / "grade.jsonl"
    base = ["grade", "--samples", "30", "--good", "2",
            "--checkpoint", str(checkpoint)]
    assert main(base + ["--iterations", "2"]) == 0
    capsys.readouterr()
    # A different workload against the same checkpoint: refused...
    assert main(base + ["--iterations", "3", "--resume"]) == 2
    err = capsys.readouterr().err
    assert "fingerprint mismatch" in err and "force" in err
    # ... unless forced.
    assert main(base + ["--iterations", "3", "--resume", "--force"]) == 0
    assert "faults detected" in capsys.readouterr().out


def test_chaos_command_clean_soak(tmp_path, capsys):
    report_file = tmp_path / "soak.json"
    assert main(["chaos", "--seed", "11", "--campaigns", "2",
                 "--units", "8", "--inject", "kill,torn,corrupt",
                 "--scratch", str(tmp_path / "scratch"),
                 "--report", str(report_file), "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "chaos soak" in out
    assert "0 invariant violations" in out
    assert report_file.exists()
    import json
    doc = json.loads(report_file.read_text())
    assert doc["violations"] == 0 and doc["crashes"] >= 2


def test_chaos_rejects_unknown_class(capsys):
    assert main(["chaos", "--seed", "1", "--inject", "gremlins"]) == 2
    assert "unknown chaos class" in capsys.readouterr().err


def test_invalid_repro_scale_exits_cleanly(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SCALE", "bogus")
    assert main(["isa"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "bogus" in err
    assert "Traceback" not in err


def test_constraints_command(capsys):
    assert main(["constraints", "--patterns", "512"]) == 0
    out = capsys.readouterr().out
    assert "shifter modes" in out
    assert "discardable modes" in out


def test_export_verilog_command(tmp_path, capsys):
    output = tmp_path / "core.v"
    assert main(["export-verilog", "--output", str(output)]) == 0
    src = output.read_text()
    assert src.startswith("module dsp_core")
    assert "endmodule" in src


def test_save_and_reuse_metrics_table(tmp_path, capsys):
    table_file = tmp_path / "table.json"
    assert main(["metrics", "--samples", "30", "--good", "2",
                 "--columns", "3", "--save-table", str(table_file)]) == 0
    assert table_file.exists()
    capsys.readouterr()
    # Reusing the saved table must skip measurement entirely and produce
    # a program.
    assert main(["generate", "--iterations", "2",
                 "--table", str(table_file)]) == 0
    out = capsys.readouterr().out
    assert "ld rnd" in out


def test_testability_command(tmp_path, capsys):
    report = tmp_path / "testability.json"
    assert main(["testability", "--target", "components",
                 "--json", str(report)]) == 0
    out = capsys.readouterr().out
    assert "multiplier" in out and "med p(det)" in out
    assert "statically untestable" in out
    import json
    doc = json.loads(report.read_text())
    assert doc["schema"] == "repro.testability/1"
    names = {c["name"] for c in doc["components"]}
    assert {"multiplier", "shifter", "limiter"} <= names
    mult = next(c for c in doc["components"] if c["name"] == "multiplier")
    # The multiplier's tie-off faults are statically untestable.
    assert mult["n_unbounded"] >= 2


def test_testability_rejects_bad_floor(capsys):
    assert main(["testability", "--floor", "-1"]) == 2
    assert "floor" in capsys.readouterr().err


def test_isa_command(capsys):
    assert main(["isa"]) == 0
    out = capsys.readouterr().out
    assert "MPYSHIFTMACA" in out
    assert "ld-rnd trap opcode" in out
    assert "F2" in out and "F3" in out


def test_core_report_command(capsys):
    assert main(["core-report"]) == 0
    out = capsys.readouterr().out
    assert "logic depth" in out
    assert "multiplier" in out
    assert "fanout histogram" in out


# ----------------------------------------------------------------------
# The campaign service: serve / submit / status / cancel
# ----------------------------------------------------------------------
def test_service_submit_serve_status_roundtrip(tmp_path, capsys):
    journal = str(tmp_path / "svc.jsonl")
    assert main(["submit", "--journal", journal, "--job", "j1",
                 "--seed", "3", "--units", "4"]) == 0
    assert main(["submit", "--journal", journal, "--job", "j2",
                 "--seed", "4", "--units", "4"]) == 0
    assert main(["serve", "--journal", journal]) == 0
    out = capsys.readouterr().out
    assert "serve: idle (2/2 jobs done)" in out
    assert main(["status", "--journal", journal, "--verify",
                 "--require-terminal"]) == 0
    out = capsys.readouterr().out
    assert "2 jobs, 2 terminal" in out
    assert "service invariants: OK" in out
    assert "leaked_threads" in out  # health counters surfaced


def test_service_status_json_and_cancel(tmp_path, capsys):
    journal = str(tmp_path / "svc.jsonl")
    assert main(["submit", "--journal", journal, "--job", "doomed",
                 "--units", "3"]) == 0
    assert main(["cancel", "--journal", journal, "--job", "doomed"]) == 0
    assert main(["serve", "--journal", journal]) == 0
    capsys.readouterr()
    assert main(["status", "--journal", journal, "--json",
                 "--verify", "--require-terminal"]) == 0
    import json
    doc = json.loads(capsys.readouterr().out)
    assert doc["violations"] == []
    assert doc["jobs"][0]["status"] == "cancelled"


def test_service_status_flags_forged_journal(tmp_path, capsys):
    from repro.runtime.queue import JobJournal
    journal = JobJournal(str(tmp_path / "svc.jsonl"))
    journal.create({})
    spec = {"job_id": "a", "kind": "soak", "seed": 1, "n_units": 1,
            "checkpoint": None, "params": {}}
    lease = {"event": "lease", "job": "a", "worker": "w", "token": 1,
             "epoch": 1, "granted": 0.0, "expires": 30.0}
    journal.append({"event": "submit", "job": "a", "spec": spec})
    journal.append(dict(lease))
    journal.append({**lease, "token": 2})  # double lease
    journal.close()
    assert main(["status", "--journal", journal.path, "--verify"]) == 1
    assert "double-lease" in capsys.readouterr().err


def test_serve_requires_journal_or_soak(capsys):
    assert main(["serve"]) == 2
    assert "requires --journal" in capsys.readouterr().err


def test_serve_soak_requires_seed(capsys):
    assert main(["serve", "--soak"]) == 2
    assert "--seed" in capsys.readouterr().err


def test_serve_soak_command_clean(tmp_path, capsys):
    report_file = tmp_path / "service-soak.json"
    assert main(["serve", "--soak", "--seed", "13",
                 "--campaigns", "3", "--units", "4",
                 "--scratch", str(tmp_path / "scratch"),
                 "--report", str(report_file)]) == 0
    out = capsys.readouterr().out
    assert "service soak" in out
    assert "0 invariant violations" in out
    import json
    doc = json.loads(report_file.read_text())
    assert doc["violations"] == []
    assert doc["disruptions"] > 0
