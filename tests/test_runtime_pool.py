"""Tests for the process-pool campaign backend (repro.runtime.pool)."""

import json

import pytest

from repro.faults.hierarchical import (
    DspFaultUniverse,
    HierarchicalFaultSimulator,
)
from repro.runtime.campaigns import HierarchicalCampaign
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.errors import ConfigError
from repro.runtime.pool import (
    fork_available,
    merge_shards,
    resolve_jobs,
    shard_path_for,
    shard_paths,
)
from repro.runtime.runner import CampaignRunner, WorkUnit

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
def test_resolve_jobs_default_is_serial(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1


def test_resolve_jobs_env_and_explicit(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs(None) == 3
    assert resolve_jobs(4) == 4          # explicit beats the environment
    assert resolve_jobs("2") == 2


def test_resolve_jobs_auto(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs("auto") >= 1


@pytest.mark.parametrize("bad", [0, -2, "zero", "1.5", 2.5])
def test_resolve_jobs_rejects_garbage(bad):
    with pytest.raises(ConfigError):
        resolve_jobs(bad)


def test_runner_honours_repro_jobs_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    assert CampaignRunner(jobs=None).jobs == 2
    assert CampaignRunner().jobs == 1    # explicit default stays serial


# ----------------------------------------------------------------------
# Shard merging
# ----------------------------------------------------------------------
def test_merge_shards_recovers_orphaned_records(tmp_path):
    """Records a killed parent never persisted are folded back in, and
    a partial tail (worker killed mid-write) is dropped silently."""
    path = str(tmp_path / "ck.jsonl")
    store = CheckpointStore(path)
    store.create({"n": 1})
    store.append({"unit": "a", "status": "ok", "value": 1})

    shard = shard_path_for(path, 12345)
    with open(shard, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"created": "header"}) + "\n")
        handle.write(json.dumps(
            {"unit": "a", "status": "ok", "value": 999}) + "\n")
        handle.write(json.dumps(
            {"unit": "b", "status": "ok", "value": 2}) + "\n")
        handle.write('{"unit": "c", "status"')     # torn write

    _, completed = store.load()
    merged = merge_shards(store, completed)
    assert merged == 1
    assert completed["a"]["value"] == 1            # canonical record wins
    assert completed["b"]["value"] == 2
    assert "c" not in completed
    assert shard_paths(path) == []                 # shard consumed

    # The merged record is durable in the canonical file.
    _, reloaded = CheckpointStore(path).load()
    assert set(reloaded) == {"a", "b"}


def test_merge_shards_orders_shards_deterministically(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    store = CheckpointStore(path)
    store.create(None)
    for pid in (222, 111):
        with open(shard_path_for(path, pid), "w", encoding="utf-8") as f:
            f.write(json.dumps(
                {"unit": "x", "status": "ok", "value": pid}) + "\n")
    completed = {}
    merge_shards(store, completed)
    # Lexicographically first shard wins the duplicate.
    assert completed["x"]["value"] == 111


# ----------------------------------------------------------------------
# Pooled execution
# ----------------------------------------------------------------------
def small_universe():
    return DspFaultUniverse(components=["mux7", "macreg"],
                            include_regfile=False)


def program_words(iterations=8):
    from repro.bist.template import RandomLoad, TemplateArchitecture
    from repro.dsp.isa import Instruction, Opcode
    program = [
        RandomLoad(0), RandomLoad(1),
        Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
        Instruction(Opcode.OUT, regb=2),
        Instruction(Opcode.OUTA),
    ]
    return TemplateArchitecture(program).expand(iterations)


def make_campaign(words, checkpoint, jobs=1):
    sim = HierarchicalFaultSimulator(universe=small_universe(),
                                     block_size=32, checkpoint_every=16)
    return HierarchicalCampaign(words, simulator=sim,
                                checkpoint=checkpoint, jobs=jobs)


def report_fingerprint(report):
    """Everything that must match between backends (elapsed may differ)."""
    return [
        (r.unit_id, r.status, r.value, r.resumed)
        for r in report.results.values()
    ]


@needs_fork
def test_pooled_report_identical_to_serial(tmp_path):
    """`jobs=4` produces the same CampaignReport as the serial backend:
    same unit ids, statuses and values, in the same order."""
    words = program_words(8)
    serial = make_campaign(words, None, jobs=1).run()
    pooled = make_campaign(
        words, str(tmp_path / "pool.jsonl"), jobs=4).run()
    assert report_fingerprint(pooled.report) \
        == report_fingerprint(serial.report)
    assert pooled.report.counts() == serial.report.counts()

    # The assembled coverage result matches a direct run too.
    direct = HierarchicalFaultSimulator(
        universe=small_universe(), block_size=32, checkpoint_every=16,
    ).run(words)
    assert {f.describe(): c for f, c in pooled.result.first_detect.items()} \
        == {f.describe(): c for f, c in direct.first_detect.items()}


@needs_fork
def test_pooled_kill_and_resume_roundtrip(tmp_path):
    """A pooled campaign interrupted mid-run resumes (still pooled) and
    matches an uninterrupted serial run exactly."""
    words = program_words(8)
    path = str(tmp_path / "pool.jsonl")
    cutoff = 20

    serial = make_campaign(words, None, jobs=1).run()
    first = make_campaign(words, path, jobs=2).run(max_units=cutoff)
    assert first.report.interrupted
    assert first.report.n_executed == cutoff
    assert shard_paths(path) == []         # completed shards folded away

    second = make_campaign(words, path, jobs=2).run(resume=True)
    assert not second.report.interrupted
    assert second.report.n_resumed == cutoff
    assert {f.describe(): c for f, c in second.result.first_detect.items()} \
        == {f.describe(): c for f, c in serial.result.first_detect.items()}


@needs_fork
def test_pooled_resume_recovers_shard_only_records(tmp_path):
    """Simulate a parent killed after a worker persisted its shard
    record but before the canonical append: resume must not re-run it."""
    words = program_words(6)
    path = str(tmp_path / "pool.jsonl")
    complete = make_campaign(words, path, jobs=2).run()
    n_units = len(complete.report.results)

    # Rebuild the checkpoint as the kill would have left it: move the
    # last record out of the canonical file into a worker shard.
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().split("\n") if line]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines[:-1]) + "\n")
    with open(shard_path_for(path, 99999), "w", encoding="utf-8") as f:
        f.write(lines[-1] + "\n")

    outcome = make_campaign(words, path, jobs=2).run(resume=True)
    assert outcome.report.n_executed == 0
    assert outcome.report.n_resumed == n_units
    assert shard_paths(path) == []


@needs_fork
def test_pooled_falls_back_serially_when_pool_dies(tmp_path, monkeypatch):
    """If the pool backend returns partial results the runner finishes
    the remainder in-process (graceful degradation of the backend)."""
    import repro.runtime.pool as pool_mod

    real = pool_mod.run_pooled

    def flaky(runner, pending, progress=None, total=None):
        results = real(runner, pending[: len(pending) // 2],
                       progress=progress, total=total)
        return results

    monkeypatch.setattr(pool_mod, "run_pooled", flaky)

    units = [WorkUnit(unit_id=f"u{i}", run=lambda i=i: i * i)
             for i in range(8)]
    runner = CampaignRunner(checkpoint=str(tmp_path / "ck.jsonl"), jobs=2)
    report = runner.run(units)
    assert [r.value for r in report.results.values()] \
        == [i * i for i in range(8)]
    assert not report.interrupted


# ----------------------------------------------------------------------
# Worker-side aggregation (cache counters + obs metrics)
# ----------------------------------------------------------------------
@needs_fork
def test_pooled_cache_counters_aggregate_to_serial(tmp_path):
    """Worker cache hit/miss counters ship back through the result
    stream and fold into the parent's totals: the pooled campaign's
    ``cache_stats()`` delta equals the serial twin's on the same
    workload.  (Before the obs layer, worker counters died with the
    workers and pooled runs silently under-counted.)"""
    from repro.harness.perf import cache_delta
    from repro.logic.random_nets import random_netlist
    from repro.runtime.cache import (
        cache_stats,
        cached_good_values,
        clear_caches,
    )

    netlist = random_netlist(5, n_inputs=4, n_gates=12)

    def probe(i):
        patterns = {"in": [i % 16, (i * 7) % 16]}
        compute = lambda: [0] * netlist.n_nets          # noqa: E731
        cached_good_values(netlist, patterns, 2, compute)  # miss
        cached_good_values(netlist, patterns, 2, compute)  # hit
        return {"i": i}

    def run(jobs, path):
        clear_caches()
        before = cache_stats()
        units = [WorkUnit(unit_id=f"p{i}", run=lambda i=i: probe(i))
                 for i in range(8)]
        CampaignRunner(checkpoint=path, jobs=jobs).run(units)
        return cache_delta(before, cache_stats())

    serial = run(1, str(tmp_path / "serial.jsonl"))
    pooled = run(3, str(tmp_path / "pooled.jsonl"))
    assert serial["trace_misses"] == 8 and serial["trace_hits"] == 8
    assert pooled == serial


@needs_fork
def test_pooled_combsim_cache_delta_matches_serial(tmp_path):
    """A real CombSim campaign: the parent's warmup pre-computes every
    block, so pooled and serial twins must land on identical cache
    deltas (and identical first-detect results)."""
    from repro.faults.combsim import CombFaultSimulator
    from repro.harness.perf import cache_delta
    from repro.logic.random_nets import random_netlist
    from repro.runtime.cache import cache_stats, clear_caches
    from repro.runtime.campaigns import CombSimCampaign

    def build(jobs, checkpoint):
        netlist = random_netlist(9, n_inputs=5, n_gates=18)
        sim = CombFaultSimulator(netlist)
        blocks = [{"in": [(i * 13 + b) % 32 for i in range(8)]}
                  for b in range(2)]
        return CombSimCampaign(sim, blocks, checkpoint=checkpoint,
                               jobs=jobs)

    clear_caches()
    before = cache_stats()
    serial = build(1, None).run()
    serial_delta = cache_delta(before, cache_stats())

    clear_caches()
    before = cache_stats()
    pooled = build(3, str(tmp_path / "cc.jsonl")).run()
    pooled_delta = cache_delta(before, cache_stats())

    assert pooled_delta == serial_delta
    assert {(f.net, f.stuck_at): v for f, v in pooled.result.items()} \
        == {(f.net, f.stuck_at): v for f, v in serial.result.items()}


@needs_fork
def test_pooled_obs_metrics_equal_serial_totals(tmp_path):
    """Metric snapshots ride the result stream: a pooled campaign's
    merged counters/histograms equal the serial run's on an identical
    workload (wall-clock histograms excluded — durations differ)."""
    from repro import obs

    def work(i):
        obs.incr("work.calls")
        obs.incr("work.weight", i)
        obs.observe("work.value", float(i))
        return {"i": i}

    def totals(jobs, path):
        with obs.enabled_session(trace=False, metrics=True,
                                 profile=False, seed=1) as session:
            units = [WorkUnit(unit_id=f"w{i}", run=lambda i=i: work(i))
                     for i in range(10)]
            CampaignRunner(checkpoint=path, jobs=jobs).run(units)
            return session.registry.snapshot()

    serial = totals(1, str(tmp_path / "s.jsonl"))
    pooled = totals(3, str(tmp_path / "p.jsonl"))
    assert serial["counters"]["work.calls"] == 10
    assert serial["counters"]["campaign.units.ok"] == 10
    assert pooled["counters"] == serial["counters"]
    assert pooled["histograms"]["work.value"] \
        == serial["histograms"]["work.value"]


@needs_fork
def test_pooled_plain_units_roundtrip(tmp_path):
    """Closure-only units (no campaign adapter) survive the fork and the
    record round trip."""
    units = [WorkUnit(unit_id=f"u{i}", run=lambda i=i: {"square": i * i})
             for i in range(10)]
    runner = CampaignRunner(checkpoint=str(tmp_path / "ck.jsonl"), jobs=3)
    report = runner.run(units, fingerprint={"k": 1})
    assert report.counts()["ok"] == 10
    assert report.value("u7") == {"square": 49}
    # Everything landed in the canonical checkpoint; no shards left.
    _, completed = CheckpointStore(str(tmp_path / "ck.jsonl")).load()
    assert len(completed) == 10
    assert shard_paths(str(tmp_path / "ck.jsonl")) == []
