"""Golden-file regression tests for the paper's measured artefacts.

Table 1 (the simple-datapath metrics), Table 2 (the DSP-core metrics
table) and the Phase-1 greedy instruction selection are all
deterministic given their seeds — any drift in a measured C/O value or
in the chosen instruction sequence is a behaviour change, not noise.
These tests pin the exact values as canonical JSON under
``tests/goldens/`` so such drift fails loudly; regenerate deliberately
with ``pytest --regen-goldens`` and review the diff.

The golden-campaign checkpoint/report pair additionally pins the
runner's output format from **before** the observability layer landed:
``test_obs_inert.py`` replays the same campaign with tracing on and off
against the same goldens.
"""

import pytest

from tests.conftest import (
    GOLDEN_CAMPAIGN_FINGERPRINT,
    campaign_report_payload,
    golden_campaign_runner,
    golden_campaign_units,
)

from repro.metrics.simple_metrics import build_table1
from repro.metrics.table import build_metrics_table
from repro.selftest.phase1 import run_phase1

#: Small, fast, deterministic parameters — goldens pin behaviour, not
#: paper-scale accuracy (the benchmarks own that).
TABLE1_PARAMS = dict(n_samples=60, n_good=8, seed=17)
TABLE2_PARAMS = dict(n_controllability_samples=8, n_observability_good=2)


def _cell(c, o, covered=None):
    payload = {"c": round(c, 10), "o": round(o, 10)}
    if covered is not None:
        payload["covered"] = covered
    return payload


@pytest.fixture(scope="module")
def small_table():
    return build_metrics_table(**TABLE2_PARAMS)


def test_table1_golden(golden):
    table = build_table1(**TABLE1_PARAMS)
    payload = {
        row: {col: _cell(cell.c, cell.o) for col, cell in cells.items()}
        for row, cells in table.items()
    }
    golden("table1.json", payload)


def test_table2_golden(golden, small_table):
    table = small_table
    payload = {}
    for row in table.rows:
        cells = {}
        for column in table.columns:
            cell = table.cell(row, column)
            if cell is None:
                continue
            label = f"{column[0]}:{column[1]}"
            cells[label] = _cell(cell.c, cell.o,
                                 covered=table.is_covered(row, column))
        payload[row.label] = cells
    golden("table2.json", payload)


def test_phase1_selection_golden(golden, small_table):
    result = run_phase1(small_table)
    payload = {
        "wrappers": [v.label for v in result.wrapper_rows],
        "wrapper_covered": [f"{c[0]}:{c[1]}" for c in result.wrapper_covered],
        "selections": [
            {"variant": variant.label,
             "columns": [f"{c[0]}:{c[1]}" for c in columns]}
            for variant, columns in result.selections
        ],
        "uncovered": [f"{c[0]}:{c[1]}" for c in result.uncovered],
    }
    golden("phase1_selection.json", payload)


def test_golden_campaign_report(golden, tmp_path):
    """The deterministic campaign's report and checkpoint, byte-stable."""
    checkpoint = tmp_path / "golden.jsonl"
    runner = golden_campaign_runner(str(checkpoint))
    report = runner.run(golden_campaign_units(),
                        fingerprint=GOLDEN_CAMPAIGN_FINGERPRINT)
    golden("campaign_report.json", campaign_report_payload(report))

    # The checkpoint is JSONL, not JSON; pin its exact bytes via a
    # one-key payload so the same golden() plumbing applies.
    golden("campaign_checkpoint.json",
           {"jsonl": checkpoint.read_text().splitlines()})
