"""Tests for the limiter (saturator) and truncater."""

import pytest
from hypothesis import given, settings, strategies as st

from repro._util import mask, to_signed, to_unsigned
from repro.logic.simulator import CombSimulator
from repro.rtl.saturate import limiter_reference, make_limiter
from repro.rtl.truncate import make_truncater, truncater_reference

WORD18 = st.integers(0, mask(18))


@pytest.fixture(scope="module")
def limiter():
    return CombSimulator(make_limiter())


@pytest.fixture(scope="module")
def truncater():
    return CombSimulator(make_truncater())


def test_limiter_reference_in_range():
    # 1.0 in 10.8 (= 256) -> 1.0 in 4.4 (= 16)
    assert limiter_reference(256) == 16
    assert limiter_reference(0) == 0
    # -1.0 in 10.8 -> -1.0 in 4.4 (0xF0)
    assert limiter_reference(to_unsigned(-256, 18)) == 0xF0


def test_limiter_reference_saturates():
    big = to_unsigned(100 << 8, 18)  # +100.0, way past +7.9375
    assert limiter_reference(big) == 0x7F
    small = to_unsigned(-100 << 8, 18)
    assert limiter_reference(small) == 0x80


def test_limiter_reference_boundaries():
    # Largest representable: 0x7F in 4.4 = 127/16; in 10.8 that's 127 << 4
    assert limiter_reference(127 << 4) == 0x7F
    assert limiter_reference((127 << 4) + 16) == 0x7F  # one LSB over -> clip
    lowest = to_unsigned(-128 << 4, 18)
    assert limiter_reference(lowest) == 0x80


@settings(max_examples=80)
@given(WORD18)
def test_limiter_gate_level_matches(limiter, data):
    out = limiter.evaluate_word({"data": data})
    assert out["out"] == limiter_reference(data)


def test_limiter_gate_level_corners(limiter):
    for data in [0, 1, mask(18), 1 << 17, 127 << 4, (127 << 4) + 1,
                 to_unsigned(-128 << 4, 18), to_unsigned((-128 << 4) - 1, 18)]:
        out = limiter.evaluate_word({"data": data})
        assert out["out"] == limiter_reference(data), data


@given(WORD18)
def test_limiter_output_never_exceeds_window(data):
    out = limiter_reference(data)
    assert 0 <= out <= 0xFF
    signed = to_signed(out, 8)
    assert -128 <= signed <= 127


def test_limiter_bad_window_rejected():
    with pytest.raises(ValueError):
        make_limiter(in_width=12, out_width=8, frac_drop=4)


def test_truncater_reference():
    assert truncater_reference(0x3FFFF, 1) == 0x3FF00
    assert truncater_reference(0x3FFFF, 0) == 0x3FFFF
    assert truncater_reference(0x000FF, 1) == 0


@settings(max_examples=60)
@given(WORD18, st.integers(0, 1))
def test_truncater_gate_level_matches(truncater, data, en):
    out = truncater.evaluate_word({"data": data, "en": en})
    assert out["out"] == truncater_reference(data, en)


@given(WORD18)
def test_truncate_is_idempotent(data):
    once = truncater_reference(data, 1)
    assert truncater_reference(once, 1) == once
