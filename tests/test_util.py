"""Unit and property tests for repro._util bit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro._util import (
    bit,
    bit_list,
    bits,
    from_bit_list,
    mask,
    popcount,
    set_field,
    sign_extend,
    to_signed,
    to_unsigned,
    truncate,
)


def test_mask_basic():
    assert mask(0) == 0
    assert mask(1) == 1
    assert mask(4) == 0b1111
    assert mask(17) == (1 << 17) - 1


def test_mask_negative_raises():
    with pytest.raises(ValueError):
        mask(-1)


def test_truncate():
    assert truncate(0x1FF, 8) == 0xFF
    assert truncate(-1, 4) == 0xF


def test_to_signed_boundaries():
    assert to_signed(0x7F, 8) == 127
    assert to_signed(0x80, 8) == -128
    assert to_signed(0xFF, 8) == -1
    assert to_signed(0, 8) == 0


def test_to_unsigned_wraps():
    assert to_unsigned(-1, 8) == 0xFF
    assert to_unsigned(256, 8) == 0
    assert to_unsigned(-128, 8) == 0x80


def test_sign_extend():
    assert sign_extend(0x80, 8, 18) == (mask(18) & -128)
    assert sign_extend(0x7F, 8, 18) == 0x7F
    assert sign_extend(0xF, 4, 8) == 0xFF


def test_sign_extend_narrowing_raises():
    with pytest.raises(ValueError):
        sign_extend(1, 8, 4)


def test_bit_and_bits():
    assert bit(0b1010, 1) == 1
    assert bit(0b1010, 0) == 0
    assert bits(0b110101, 4, 2) == 0b101


def test_bits_bad_slice():
    with pytest.raises(ValueError):
        bits(0, 1, 3)


def test_set_field():
    assert set_field(0, 7, 4, 0xA) == 0xA0
    assert set_field(0xFF, 3, 0, 0) == 0xF0
    assert set_field(0, 16, 12, 0b10101) == 0b10101 << 12


def test_popcount():
    assert popcount(0) == 0
    assert popcount(0b1011) == 3
    with pytest.raises(ValueError):
        popcount(-1)


def test_bit_list_roundtrip_example():
    assert bit_list(0b1011, 4) == [1, 1, 0, 1]
    assert from_bit_list([1, 1, 0, 1]) == 0b1011


@given(st.integers(min_value=0, max_value=mask(18)), st.integers(1, 18))
def test_signed_roundtrip(value, width):
    value &= mask(width)
    assert to_unsigned(to_signed(value, width), width) == value


@given(st.integers(min_value=-(1 << 17), max_value=(1 << 17) - 1))
def test_sign_extend_preserves_value(value):
    unsigned = to_unsigned(value, 18)
    wide = sign_extend(unsigned, 18, 32)
    assert to_signed(wide, 32) == value


@given(st.integers(min_value=0, max_value=mask(20)), st.integers(1, 20))
def test_bit_list_roundtrip(value, width):
    value &= mask(width)
    assert from_bit_list(bit_list(value, width)) == value


@given(
    st.integers(min_value=0, max_value=mask(17)),
    st.integers(min_value=0, max_value=16),
    st.integers(min_value=0, max_value=mask(17)),
)
def test_set_field_then_bits(word, low, field):
    high = min(low + 3, 16)
    width = high - low + 1
    updated = set_field(word, high, low, field)
    assert bits(updated, high, low) == field & mask(width)
