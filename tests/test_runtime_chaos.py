"""Tests for the deterministic chaos injector and the soak harness."""

import os

import pytest

from repro.runtime import chaos
from repro.runtime.chaos import (
    ChaosConfig,
    ChaosKill,
    ChaosMonkey,
    DEFAULT_SOAK_CLASSES,
    FAILURE_CLASSES,
    parse_classes,
    run_soak,
)
from repro.runtime.errors import ConfigError
from repro.runtime.runner import CampaignRunner, WorkUnit


@pytest.fixture(autouse=True)
def no_leftover_monkey():
    chaos.uninstall()
    yield
    chaos.uninstall()


def units(n):
    return [WorkUnit(unit_id=f"u{i}", run=lambda i=i: i * 10)
            for i in range(n)]


# ----------------------------------------------------------------------
# Config and class parsing
# ----------------------------------------------------------------------
def test_parse_classes_roundtrip():
    assert parse_classes("kill,corrupt") == ("kill", "corrupt")
    assert parse_classes("all") == FAILURE_CLASSES
    assert parse_classes("kill, kill ,torn") == ("kill", "torn")


def test_parse_classes_rejects_unknown():
    with pytest.raises(ConfigError, match="unknown chaos class"):
        parse_classes("kill,gremlins")
    with pytest.raises(ConfigError):
        parse_classes("")


def test_config_requires_seed():
    with pytest.raises(ConfigError, match="seed"):
        ChaosConfig(seed=None).validate()


def test_config_rejects_certain_probability():
    with pytest.raises(ConfigError, match="probability"):
        ChaosConfig(seed=1, probability=1.0).validate()
    ChaosConfig(seed=1, probability=0.99).validate()  # fine


# ----------------------------------------------------------------------
# Inertness and determinism
# ----------------------------------------------------------------------
def test_inject_is_noop_when_uninstalled():
    assert chaos.active() is None
    assert chaos.inject("runner.unit", unit_id="u0") is None
    assert chaos.inject("checkpoint.append") is None


def test_campaign_identical_with_and_without_chaos_module(tmp_path):
    """Chaos off ⇒ provably inert: a checkpointed campaign writes the
    same records whether or not the injection points exist."""
    a = CampaignRunner(checkpoint=str(tmp_path / "a.jsonl")).run(units(5))
    b = CampaignRunner(checkpoint=str(tmp_path / "b.jsonl")).run(units(5))

    def rows(r):
        return [(u.unit_id, u.status, u.value) for u in r.results.values()]

    assert rows(a) == rows(b)
    assert all(u.status == "ok" for u in a.results.values())


def test_schedule_is_deterministic():
    config = ChaosConfig(seed=42, classes=("kill", "io"))
    runs = []
    for _ in range(2):
        monkey = ChaosMonkey(config, horizon=4)
        fired = []
        for i in range(30):
            try:
                fired.append(monkey.inject("runner.unit", unit_id=f"u{i}"))
            except ChaosKill:
                fired.append("KILL")
            try:
                fired.append(monkey.inject("checkpoint.append"))
            except OSError:
                fired.append("IO")
        runs.append(fired)
    assert runs[0] == runs[1]
    assert "KILL" in runs[0] and "IO" in runs[0]


def test_every_enabled_class_fires_at_least_once():
    config = ChaosConfig(seed=3, classes=("kill", "torn", "io"),
                         probability=0.0)
    monkey = ChaosMonkey(config, horizon=4)
    for i in range(20):
        try:
            monkey.inject("runner.unit", unit_id=f"u{i}")
        except ChaosKill:
            pass
        try:
            monkey.inject("checkpoint.append")
        except (ChaosKill, OSError):
            pass
    assert all(count >= 1 for count in monkey.injection_counts().values())


def test_max_per_class_bounds_firings():
    config = ChaosConfig(seed=5, classes=("io",), probability=0.99,
                         max_per_class=3)
    monkey = ChaosMonkey(config, horizon=2)
    fired = 0
    for _ in range(200):
        try:
            monkey.inject("checkpoint.append")
        except OSError:
            fired += 1
    assert fired == 3


def test_worker_filter_blocks_parent_classes():
    """A monkey observed from a different pid only acts for worker
    classes; parent-only classes silently no-op."""
    config = ChaosConfig(seed=9, classes=("kill",), probability=0.99)
    monkey = ChaosMonkey(config, horizon=1)
    monkey.pid = os.getpid() + 1   # pretend we are a forked worker
    for i in range(50):
        assert monkey.inject("runner.unit", unit_id=f"u{i}") is None
    assert monkey.injection_counts()["kill"] == 0


# ----------------------------------------------------------------------
# File-level mutations
# ----------------------------------------------------------------------
def test_mutate_checkpoint_spares_header(tmp_path):
    from repro.runtime.checkpoint import CheckpointStore
    path = str(tmp_path / "c.jsonl")
    store = CheckpointStore(path)
    store.create({"n": 1})
    store.append({"unit": "a", "status": "ok"})
    store.close()
    with open(path, "rb") as handle:
        header_line = handle.readline()

    config = ChaosConfig(seed=11,
                         classes=("corrupt", "truncate", "duplicate"))
    monkey = ChaosMonkey(config, horizon=1)
    applied = {monkey.mutate_checkpoint(path) for _ in range(3)}
    assert applied <= {"corrupt", "truncate", "duplicate", None}
    assert applied != {None}
    with open(path, "rb") as handle:
        assert handle.readline() == header_line


# ----------------------------------------------------------------------
# Injected failures drive the real recovery paths
# ----------------------------------------------------------------------
def test_kill_escapes_runner_quarantine(tmp_path):
    chaos.install(ChaosMonkey(
        ChaosConfig(seed=1, classes=("kill",), probability=0.0),
        horizon=1,
    ))
    runner = CampaignRunner(checkpoint=str(tmp_path / "k.jsonl"))
    with pytest.raises(ChaosKill):
        runner.run(units(5), fingerprint={"n": 5})


def test_io_failure_surfaces_as_oserror(tmp_path):
    chaos.install(ChaosMonkey(
        ChaosConfig(seed=1, classes=("io",), probability=0.0),
        horizon=1,
    ))
    runner = CampaignRunner(checkpoint=str(tmp_path / "io.jsonl"))
    with pytest.raises(OSError):
        runner.run(units(5), fingerprint={"n": 5})


def test_torn_write_repaired_on_resume(tmp_path):
    from repro.runtime.checkpoint import CheckpointStore
    path = str(tmp_path / "t.jsonl")
    chaos.install(ChaosMonkey(
        ChaosConfig(seed=1, classes=("torn",), probability=0.0),
        horizon=1,
    ))
    with pytest.raises(ChaosKill):
        CampaignRunner(checkpoint=path).run(units(5), fingerprint={"n": 5})
    chaos.uninstall()
    # The torn half-line is on disk; repair clears it and resume finishes.
    report = CampaignRunner(checkpoint=path).run(
        units(5), fingerprint={"n": 5}, resume=True, repair=True)
    assert [u.status for u in report.results.values()] == ["ok"] * 5
    _, records = CheckpointStore(path).load()   # chain intact again
    assert set(records) == {f"u{i}" for i in range(5)}


def test_hang_times_out_then_retry_succeeds(tmp_path):
    chaos.install(ChaosMonkey(
        ChaosConfig(seed=1, classes=("hang",), probability=0.0),
        horizon=1,
    ))
    runner = CampaignRunner(checkpoint=str(tmp_path / "h.jsonl"),
                            unit_timeout=0.05, max_retries=2,
                            backoff_base=0.001, backoff_max=0.01)
    report = runner.run(units(3), fingerprint={"n": 3})
    assert [u.status for u in report.results.values()] == ["ok"] * 3
    assert report.counts()["retried"] >= 1
    assert report.counts()["leaked"] >= 1       # the hung thread


def test_cache_storm_is_invisible_in_results():
    from repro.runtime import cache
    cache.clear_caches()
    chaos.install(ChaosMonkey(
        ChaosConfig(seed=1, classes=("cache_storm",), probability=0.3,
                    max_per_class=5),
        horizon=1,
    ))
    with_storm = CampaignRunner().run(units(6))
    chaos.uninstall()
    calm = CampaignRunner().run(units(6))

    def rows(r):
        return [(u.unit_id, u.status, u.value) for u in r.results.values()]

    assert rows(with_storm) == rows(calm)


# ----------------------------------------------------------------------
# The soak harness end to end
# ----------------------------------------------------------------------
def test_small_soak_zero_violations(tmp_path):
    report = run_soak(
        seed=123, campaigns=3, n_units=8,
        classes=DEFAULT_SOAK_CLASSES,
        scratch=str(tmp_path / "scratch"),
    )
    assert report.ok(), [
        v.describe() for c in report.campaigns for v in c.violations]
    # Every campaign really suffered: at least one induced crash and one
    # resume each (kill/torn/io are all crash classes).
    assert all(c.crashes >= 1 for c in report.campaigns)
    assert all(c.resumes >= 1 for c in report.campaigns)
    # Every enabled class fired at least once per campaign.
    for campaign in report.campaigns:
        for name in DEFAULT_SOAK_CLASSES:
            assert campaign.injections[name] >= 1, (campaign.index, name)
    assert report.summary().startswith("3 chaos campaigns")
    assert chaos.active() is None               # soak cleans up


def test_soak_scratch_removed_when_private():
    before = set(os.listdir("/tmp"))
    report = run_soak(seed=5, campaigns=1, n_units=6,
                      classes=("kill",))
    assert report.ok()
    leftover = [d for d in set(os.listdir("/tmp")) - before
                if d.startswith("repro-chaos-")]
    assert leftover == []


def test_soak_report_json_shape(tmp_path):
    report = run_soak(seed=77, campaigns=2, n_units=6,
                      classes=("kill", "corrupt"),
                      scratch=str(tmp_path / "s"))
    doc = report.to_json()
    assert doc["seed"] == 77
    assert doc["violations"] == 0
    assert len(doc["campaigns"]) == 2
    assert doc["injections"]["kill"] >= 2
