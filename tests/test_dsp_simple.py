"""Tests for the simple Fig. 1 datapath (behavioural vs gate level)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.simple import (
    ALU_ADD,
    ALU_CLEAR,
    ALU_SUB,
    SIMPLE_COLUMNS,
    SIMPLE_COLUMN_LABELS,
    SimpleDspCore,
    SimpleOp,
    alu_reference,
    make_simple_core,
)
from repro.logic.sequential import SequentialSimulator

WORD8 = st.integers(0, 255)


def test_alu_reference():
    assert alu_reference(10, 5, ALU_ADD) == 15
    assert alu_reference(10, 5, ALU_SUB) == 5
    assert alu_reference(3, 250, ALU_SUB) == (3 - 250) & 0xFF
    assert alu_reference(99, 5, ALU_CLEAR) == 0
    with pytest.raises(ValueError):
        alu_reference(0, 0, 7)


def test_add_and_mac_semantics():
    core = SimpleDspCore()
    core.step(SimpleOp.ADD, 5, 0)
    assert core.state.acc == 5
    core.step(SimpleOp.MAC, 3, 4)
    assert core.state.acc == 5 + 12
    core.step(SimpleOp.SUB, 7, 0)
    assert core.state.acc == 10
    core.step(SimpleOp.CLR, 0xFF, 0xFF)
    assert core.state.acc == 0


def test_output_is_registered():
    core = SimpleDspCore()
    out = core.step(SimpleOp.ADD, 9, 0)
    assert out == 0           # pre-update value
    out = core.step(SimpleOp.ADD, 1, 0)
    assert out == 9


def test_trace_and_modes():
    core = SimpleDspCore()
    trace = {}
    core.step(SimpleOp.SUB, 2, 3, trace=trace)
    assert trace["alu"].mode == ALU_SUB
    assert trace["mult"].inputs == {"a": 2, "b": 3}
    trace = {}
    core.step(SimpleOp.MAC, 2, 3, trace=trace)
    assert trace["alu"].inputs["b"] == 6  # the product is selected


def test_override_injection():
    clean = SimpleDspCore()
    clean.step(SimpleOp.MAC, 2, 3)
    poked = SimpleDspCore()
    poked.step(SimpleOp.MAC, 2, 3, overrides={"mult": 0})
    assert clean.state.acc == 6
    assert poked.state.acc == 0


def test_stuck_bits():
    core = SimpleDspCore(stuck_bits={("acc",): (0xFF, 0x01)})
    assert core.state.acc == 1
    core.step(SimpleOp.CLR, 0, 0)
    assert core.state.acc == 1
    with pytest.raises(ValueError):
        SimpleDspCore(stuck_bits={("nope",): (0, 0)})


def test_columns_match_table1_header():
    labels = [SIMPLE_COLUMN_LABELS[c] for c in SIMPLE_COLUMNS]
    assert labels == ["Mult", "Add", "Sub", "Clear", "Acc"]


@pytest.fixture(scope="module")
def gate_core():
    return make_simple_core()


def test_gate_level_matches_behavioural_random(gate_core):
    rng = random.Random(42)
    behav = SimpleDspCore()
    gate = SequentialSimulator(gate_core)
    for _ in range(200):
        op = SimpleOp(rng.randrange(4))
        in1, in2 = rng.randrange(256), rng.randrange(256)
        expected_out = behav.step(op, in1, in2)
        got = gate.step_bus({"op": int(op), "in1": in1, "in2": in2})
        assert got["out"] == expected_out, (op, in1, in2)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), WORD8, WORD8),
                min_size=1, max_size=10))
def test_gate_level_matches_behavioural_property(gate_core, steps):
    behav = SimpleDspCore()
    gate = SequentialSimulator(gate_core)
    for op, in1, in2 in steps:
        expected = behav.step(SimpleOp(op), in1, in2)
        got = gate.step_bus({"op": op, "in1": in1, "in2": in2})
        assert got["out"] == expected


def test_gate_core_size():
    stats = gate = make_simple_core().stats()
    assert stats.n_dffs == 8
    assert 200 <= stats.n_gates <= 2000
