"""Unit tests for primitive gate evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.logic.gates import ARITY, GateType, check_arity, eval_gate, eval_scalar


def test_scalar_truth_tables():
    cases = {
        GateType.AND: {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1},
        GateType.OR: {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1},
        GateType.NAND: {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0},
        GateType.NOR: {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0},
        GateType.XOR: {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0},
        GateType.XNOR: {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 1},
    }
    for kind, table in cases.items():
        for ins, expected in table.items():
            assert eval_scalar(kind, ins) == expected, kind


def test_scalar_unary_and_const():
    assert eval_scalar(GateType.NOT, (0,)) == 1
    assert eval_scalar(GateType.NOT, (1,)) == 0
    assert eval_scalar(GateType.BUF, (1,)) == 1
    assert eval_scalar(GateType.CONST0, ()) == 0
    assert eval_scalar(GateType.CONST1, ()) == 1


def test_wide_gates():
    assert eval_scalar(GateType.AND, (1, 1, 1)) == 1
    assert eval_scalar(GateType.AND, (1, 0, 1)) == 0
    assert eval_scalar(GateType.OR, (0, 0, 1)) == 1
    assert eval_scalar(GateType.NOR, (0, 0, 0)) == 1


def test_arity_checking():
    check_arity(GateType.AND, 2)
    check_arity(GateType.AND, 5)
    with pytest.raises(ValueError):
        check_arity(GateType.AND, 1)
    with pytest.raises(ValueError):
        check_arity(GateType.XOR, 3)
    with pytest.raises(ValueError):
        check_arity(GateType.NOT, 2)
    with pytest.raises(ValueError):
        check_arity(GateType.CONST0, 1)


@given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
def test_pattern_parallel_matches_scalar(a, b):
    """Packed evaluation equals per-bit scalar evaluation for all 16 slots."""
    width_mask = 2**16 - 1
    for kind in (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
                 GateType.XOR, GateType.XNOR):
        packed = eval_gate(kind, (a, b), width_mask)
        for k in range(16):
            expected = eval_scalar(kind, ((a >> k) & 1, (b >> k) & 1))
            assert (packed >> k) & 1 == expected


@given(st.integers(0, 2**16 - 1))
def test_not_respects_mask(a):
    packed = eval_gate(GateType.NOT, (a,), 2**16 - 1)
    assert packed == (~a) & (2**16 - 1)
    assert packed >= 0


def test_arity_table_covers_all_types():
    assert set(ARITY) == set(GateType)
