"""Tests for the behavioural MAC datapath: semantics, tracing, injection."""

from hypothesis import given, settings, strategies as st

from repro._util import mask, to_signed, to_unsigned
from repro.dsp.fixedpoint import float_to_q44, q44_to_float
from repro.dsp.isa import Opcode, control_word
from repro.dsp.mac import MacControls, MacDatapath
from repro.rtl.saturate import limiter_reference


def ctrl_for(op):
    return MacControls.from_control_word(control_word(op))


def test_mpy_writes_product_to_acc_a():
    # 2.0 * 1.5 = 3.0 in 4.4: 0x20 * 0x18.
    result = MacDatapath.evaluate(0x20, 0x18, ctrl_for(Opcode.MPYA), 0, 0)
    assert to_signed(result.acc_a, 18) == 2 * 16 * 24  # 8.8 product scale
    assert result.acc_b == 0
    assert q44_to_float(result.limited) == 3.0


def test_mpy_b_targets_acc_b():
    result = MacDatapath.evaluate(0x10, 0x10, ctrl_for(Opcode.MPYB), 7, 0)
    assert result.acc_a == 7  # untouched
    assert to_signed(result.acc_b, 18) == 256  # 1.0 in 10.8


def test_mac_accumulates():
    ctrl = ctrl_for(Opcode.MACA_ADD)
    acc = 0
    for _ in range(3):
        acc = MacDatapath.evaluate(0x10, 0x10, ctrl, acc, 0).acc_a
    assert to_signed(acc, 18) == 3 * 256  # 3.0 in 10.8


def test_mac_sub_subtracts_product():
    start = 5 * 256  # 5.0 in 10.8
    result = MacDatapath.evaluate(
        0x10, 0x20, ctrl_for(Opcode.MACA_SUB), start, 0
    )
    assert to_signed(result.acc_a, 18) == (5 - 2) * 256


def test_shift_instruction_shifts_acc():
    # amt = +2 from opA's low nibble.
    start = 1 << 8  # 1.0
    result = MacDatapath.evaluate(0x02, 0x00, ctrl_for(Opcode.SHIFTA), start, 0)
    assert to_signed(result.acc_a, 18) == 4 << 8


def test_shift_negative_amount():
    start = 4 << 8
    result = MacDatapath.evaluate(0x0F, 0x00, ctrl_for(Opcode.SHIFTA), start, 0)
    assert to_signed(result.acc_a, 18) == 2 << 8  # amt = -1


def test_mpyshift_combines():
    # acc' = shift(acc, amt) + P; amt=1, acc=1.0, operands 1.0*1.0.
    start = 1 << 8
    result = MacDatapath.evaluate(
        0x11, 0x10, ctrl_for(Opcode.MPYSHIFTA), start, 0
    )
    product = to_signed(0x11, 8) * to_signed(0x10, 8)  # 17 * 16
    assert to_signed(result.acc_a, 18) == (2 << 8) + product


def test_mpyshiftmac_subtracts():
    start = 1 << 8
    result = MacDatapath.evaluate(
        0x11, 0x10, ctrl_for(Opcode.MPYSHIFTMACA), start, 0
    )
    product = to_signed(0x11, 8) * to_signed(0x10, 8)
    assert to_signed(result.acc_a, 18) == (2 << 8) - product


def test_truncation_zeroes_fraction():
    # 1.5 * 1.0 = 1.5 -> truncated to 1.0.
    result = MacDatapath.evaluate(
        float_to_q44(1.5), float_to_q44(1.0), ctrl_for(Opcode.MPYTA), 0, 0
    )
    assert q44_to_float(result.limited) == 1.0
    assert result.acc_a & 0xFF == 0


def test_limiter_saturates_large_accumulation():
    ctrl = ctrl_for(Opcode.MACA_ADD)
    acc = 0
    big = float_to_q44(7.9)
    for _ in range(4):
        acc_result = MacDatapath.evaluate(big, big, ctrl, acc, 0)
        acc = acc_result.acc_a
    assert acc_result.limited == 0x7F  # saturated positive


def test_non_writing_op_keeps_accs():
    result = MacDatapath.evaluate(
        0x55, 0xAA, ctrl_for(Opcode.OUT), 111, 222
    )
    assert result.acc_a == 111
    assert result.acc_b == 222


def test_outacc_routes_acc_through_limiter():
    acc = 3 << 8  # 3.0 in 10.8
    result = MacDatapath.evaluate(0, 0, ctrl_for(Opcode.OUTA), acc, 0)
    assert q44_to_float(result.limited) == 3.0
    assert result.acc_a == acc  # unchanged


def test_trace_records_all_components():
    trace = {}
    MacDatapath.evaluate(1, 2, ctrl_for(Opcode.MACB_SUB), 3, 4, trace=trace)
    expected = {
        "multiplier", "muxa", "muxg_shifter", "shifter", "muxb", "addsub",
        "truncater", "acca", "accb", "muxg_limiter", "limiter",
    }
    assert expected <= set(trace)
    assert trace["addsub"].mode == 1  # sub
    assert trace["muxg_shifter"].mode == 1  # acc B selected
    assert trace["multiplier"].inputs == {"a": 1, "b": 2}


def test_override_injects_error():
    ctrl = ctrl_for(Opcode.MPYA)
    clean = MacDatapath.evaluate(0x10, 0x10, ctrl, 0, 0)
    poked = MacDatapath.evaluate(
        0x10, 0x10, ctrl, 0, 0, overrides={"multiplier": 0}
    )
    assert clean.acc_a != poked.acc_a
    assert poked.acc_a == 0


def test_override_downstream_component():
    ctrl = ctrl_for(Opcode.MPYA)
    poked = MacDatapath.evaluate(
        0x10, 0x10, ctrl, 0, 0, overrides={"limiter": 0x5A}
    )
    assert poked.limited == 0x5A
    # The accumulator is upstream of the limiter and must be unaffected.
    assert to_signed(poked.acc_a, 18) == 256


@settings(max_examples=40)
@given(st.integers(0, 255), st.integers(0, 255),
       st.integers(0, mask(18)), st.integers(0, mask(18)))
def test_limited_always_tracks_written_acc(a, b, acc_a, acc_b):
    """Invariant: limited output == limiter(selected post-write acc)."""
    for op in (Opcode.MPYA, Opcode.MACB_ADD, Opcode.SHIFTA):
        result = MacDatapath.evaluate(a, b, ctrl_for(op), acc_a, acc_b)
        selected = result.acc_b if ctrl_for(op).accsel else result.acc_a
        assert result.limited == limiter_reference(selected)
