"""Tests for the program-domain lint rules (PRG000..PRG006)."""

from repro.bist.template import RandomLoad
from repro.dsp.isa import Instruction, Opcode
from repro.lint.findings import Severity
from repro.lint.program_rules import lint_program
from repro.selftest.program import TestProgram


def rules_fired(report):
    return {f.rule for f in report}


def program_of(*entries):
    """Each entry: (item, kwargs-for-add)."""
    program = TestProgram()
    for item, kwargs in entries:
        program.add(item, **kwargs)
    return program


def minimal_clean_program():
    return program_of(
        (RandomLoad(0), {}),
        (RandomLoad(1), {}),
        (Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
         {"acc_state": "0", "covers": [("multiplier", 0)]}),
        (Instruction(Opcode.OUT, regb=2), {}),
        (Instruction(Opcode.OUTA), {}),
    )


def test_clean_program_has_no_errors():
    report = lint_program(minimal_clean_program())
    assert report.errors == []
    assert report.exit_code() == 0


def test_prg000_empty_loop():
    program = program_of(
        (Instruction(Opcode.LDI, dest=0), {"in_loop": False}),
    )
    fired = rules_fired(lint_program(program))
    assert "PRG000" in fired
    assert "PRG004" not in fired  # the loop rule defers to PRG000


def test_prg001_r_row_on_zero_accumulator():
    program = program_of(
        (RandomLoad(0), {}),
        (RandomLoad(1), {}),
        (Instruction(Opcode.MACA_ADD, rega=0, regb=1, dest=2),
         {"acc_state": "R", "comment": "MacA+R"}),
        (Instruction(Opcode.OUTA), {}),
    )
    report = lint_program(program)
    prg001 = [f for f in report if f.rule == "PRG001"]
    assert len(prg001) == 1
    assert "AccA" in prg001[0].message
    assert report.exit_code() == 1


def test_prg001_quiet_after_randomising_write():
    program = program_of(
        (RandomLoad(0), {}),
        (RandomLoad(1), {}),
        (Instruction(Opcode.MPYA, rega=0, regb=1, dest=2), {}),
        (Instruction(Opcode.MACA_ADD, rega=0, regb=1, dest=3),
         {"acc_state": "R"}),
        (Instruction(Opcode.OUTA), {}),
    )
    assert "PRG001" not in rules_fired(lint_program(program))


def test_prg001_shift_of_zero_acc_stays_zero():
    """SHIFTA keeps a zero accumulator zero: the 'R' claim is still wrong."""
    program = program_of(
        (RandomLoad(0), {}),
        (Instruction(Opcode.SHIFTA, rega=0, dest=2), {}),
        (Instruction(Opcode.MACA_ADD, rega=0, regb=1, dest=3),
         {"acc_state": "R"}),
        (Instruction(Opcode.OUTA), {}),
    )
    assert "PRG001" in rules_fired(lint_program(program))


def test_prg005_zero_row_random_in_steady_state():
    report = lint_program(minimal_clean_program())
    prg005 = [f for f in report if f.rule == "PRG005"]
    # MPYA randomises AccA on pass 1; the "0" claim only holds once.
    assert len(prg005) == 1
    assert prg005[0].severity is Severity.INFO


def test_prg002_dead_store():
    program = program_of(
        (RandomLoad(0), {}),
        (RandomLoad(1), {}),
        (Instruction(Opcode.LDI, dest=5), {"comment": "dead"}),
        (Instruction(Opcode.MPYA, rega=0, regb=1, dest=2), {}),
        (Instruction(Opcode.OUT, regb=2), {}),
    )
    report = lint_program(program)
    prg002 = [f for f in report if f.rule == "PRG002"]
    assert len(prg002) == 1
    assert "R5" in prg002[0].message


def test_prg002_quiet_when_value_is_read():
    program = program_of(
        (Instruction(Opcode.LDI, dest=5), {}),
        (Instruction(Opcode.OUT, regb=5), {}),
    )
    assert "PRG002" not in rules_fired(lint_program(program))


def test_prg002_quiet_on_loop_wraparound_read():
    """A write at the loop's end read at its top is live (pass 2)."""
    program = program_of(
        (Instruction(Opcode.OUT, regb=5), {}),
        (Instruction(Opcode.LDI, dest=5), {}),
    )
    assert "PRG002" not in rules_fired(lint_program(program))


def test_prg002_ignores_writes_with_acc_side_effect():
    """MAC-family register writes are never dead: the acc update is live."""
    program = program_of(
        (RandomLoad(0), {}),
        (RandomLoad(1), {}),
        (Instruction(Opcode.MPYA, rega=0, regb=1, dest=9), {}),
        (Instruction(Opcode.OUTA), {}),
    )
    assert "PRG002" not in rules_fired(lint_program(program))


def test_prg003_unreachable_covers_claim():
    program = program_of(
        (RandomLoad(0), {}),
        (Instruction(Opcode.SHIFTA, rega=0, dest=2),
         {"covers": [("shifter", 2)]}),
        (Instruction(Opcode.OUTA), {}),
    )
    report = lint_program(program)
    prg003 = [f for f in report if f.rule == "PRG003"]
    assert len(prg003) == 1
    assert "shifter:2" in prg003[0].message
    assert report.exit_code() == 1


def test_prg004_loop_without_output():
    program = program_of(
        (Instruction(Opcode.LDI, dest=0), {}),
        (Instruction(Opcode.OUT, regb=0), {"in_loop": False}),
    )
    fired = rules_fired(lint_program(program))
    assert "PRG004" in fired


def test_prg006_covers_mode_mismatch():
    program = program_of(
        (RandomLoad(0), {}),
        (RandomLoad(1), {}),
        (Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
         {"covers": [("addsub", 1)]}),  # MPYA decodes sub=0
        (Instruction(Opcode.OUT, regb=2), {}),
        (Instruction(Opcode.OUTA), {}),
    )
    report = lint_program(program)
    prg006 = [f for f in report if f.rule == "PRG006"]
    assert len(prg006) == 1
    assert "mode 0" in prg006[0].message


def test_generated_program_is_clean():
    """The real generator's output carries no error-level findings."""
    from repro.selftest.generator import SelfTestGenerator
    selftest = SelfTestGenerator().generate(
        n_controllability_samples=30, n_observability_good=2,
    )
    report = lint_program(selftest.program)
    assert report.errors == [], report.render()
