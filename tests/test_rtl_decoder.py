"""Tests for truth-table (sum-of-products) logic generation."""

from hypothesis import given, settings, strategies as st

from repro.logic.simulator import CombSimulator
from repro.rtl.decoder import make_truth_table_logic


def test_simple_decoder():
    table = {0: 0b01, 1: 0b10, 2: 0b11}
    sim = CombSimulator(make_truth_table_logic(2, 2, table))
    for value in range(4):
        out = sim.evaluate_word({"in": value})
        assert out["out"] == table.get(value, 0)


def test_unspecified_rows_are_zero():
    sim = CombSimulator(make_truth_table_logic(3, 4, {5: 0xF}))
    for value in range(8):
        out = sim.evaluate_word({"in": value})
        assert out["out"] == (0xF if value == 5 else 0)


def test_zero_rows_skipped():
    """Rows mapping to zero need no minterm and behave like unspecified."""
    nl_with = make_truth_table_logic(2, 1, {0: 0, 1: 1})
    nl_without = make_truth_table_logic(2, 1, {1: 1})
    assert nl_with.stats().n_gates == nl_without.stats().n_gates


@settings(max_examples=25, deadline=None)
@given(st.dictionaries(st.integers(0, 31), st.integers(0, 2**10 - 1), max_size=32))
def test_arbitrary_truth_tables(table):
    sim = CombSimulator(make_truth_table_logic(5, 10, table))
    for value in range(32):
        out = sim.evaluate_word({"in": value})
        assert out["out"] == table.get(value, 0)


def test_row_out_of_range_rejected():
    import pytest
    with pytest.raises(ValueError):
        make_truth_table_logic(2, 1, {4: 1})
