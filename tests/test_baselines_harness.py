"""Tests for the BIST/ATPG baselines and the experiment harness."""

import os

import pytest

from repro.baselines.atpg_baseline import AtpgBaselineResult, run_atpg_baseline
from repro.baselines.pseudorandom import (
    pseudorandom_bist_words,
    run_pseudorandom_bist,
)
from repro.faults.hierarchical import DspFaultUniverse
from repro.harness.experiments import (
    ExperimentRegistry,
    ExperimentResult,
    current_scale,
    scaled,
)
from repro.harness.reporting import format_curve, format_table


def test_bist_words_all_distinct():
    words = pseudorandom_bist_words(500)
    assert len(set(words)) == 500
    assert all(0 < w < (1 << 17) for w in words)


def test_bist_words_cap():
    with pytest.raises(ValueError):
        pseudorandom_bist_words(131072)


def test_bist_words_deterministic():
    assert pseudorandom_bist_words(64, seed=3) == \
        pseudorandom_bist_words(64, seed=3)


def test_run_pseudorandom_bist_small():
    universe = DspFaultUniverse(components=["mux7", "macreg"],
                                include_regfile=False)
    result = run_pseudorandom_bist(200, universe=universe)
    report = result.coverage_report("bist")
    assert report.n_vectors == 200
    # Raw LFSR words rarely form observable sequences: low coverage.
    assert report.fault_coverage < 0.9


def test_atpg_baseline_tiny_sample():
    result = run_atpg_baseline(n_frames=4, backtrack_limit=40,
                               fault_sample=6)
    assert result.n_faults == 6
    assert (result.n_detected + result.n_untestable_within_frames
            + result.n_aborted) == 6
    report = result.coverage_report()
    assert 0.0 <= report.fault_coverage <= 1.0
    assert "frames" in report.name


def test_atpg_baseline_result_coverage():
    r = AtpgBaselineResult(n_faults=200, n_detected=17,
                           n_untestable_within_frames=3, n_aborted=180,
                           n_frames=6)
    assert r.fault_coverage == pytest.approx(0.085)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def test_scaled_respects_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert current_scale() == "default"
    assert scaled(1, 2, 3) == 2
    monkeypatch.setenv("REPRO_SCALE", "quick")
    assert scaled(1, 2, 3) == 1
    monkeypatch.setenv("REPRO_SCALE", "full")
    assert scaled(1, 2, 3) == 3
    monkeypatch.setenv("REPRO_SCALE", "bogus")
    with pytest.raises(ValueError):
        current_scale()


def test_registry_markdown(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    registry = ExperimentRegistry()
    registry.record(ExperimentResult(
        experiment_id="E1", description="self-test coverage",
        paper_value="98.14%", measured_value="97.2%",
    ))
    registry.record(ExperimentResult(
        experiment_id="T1", description="metrics table",
        paper_value="shape", measured_value="shape",
    ))
    table = registry.markdown_table()
    assert table.splitlines()[2].startswith("| E1 ")
    assert "98.14%" in table
    assert "default" in table


def test_format_table():
    text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "long-name" in lines[3]
    with pytest.raises(ValueError):
        format_table(["one"], [["a", "b"]])


def test_format_curve():
    text = format_curve([(0, 0.0), (100, 0.5), (200, 1.0)])
    assert "100" in text
    assert "100.00%" in text
    assert format_curve([]) == "(no data)"
