"""Tests for the campaign-config lint rules (CMP001..CMP006)."""

from repro.lint.campaign_rules import CampaignConfig, lint_campaigns
from repro.lint.findings import Severity


def rules_fired(report):
    return {f.rule for f in report}


def test_clean_configs_have_no_findings(tmp_path):
    configs = [
        CampaignConfig(name="a", checkpoint=str(tmp_path / "a.jsonl"),
                       unit_timeout=30.0, jobs=4),
        CampaignConfig(name="b", checkpoint=str(tmp_path / "b.jsonl")),
        CampaignConfig(name="c"),  # no checkpoint at all is fine
    ]
    assert lint_campaigns(configs).findings == []


def test_cmp001_checkpoint_collision(tmp_path):
    path = str(tmp_path / "shared.jsonl")
    configs = [CampaignConfig(name="a", checkpoint=path),
               CampaignConfig(name="b", checkpoint=path),
               CampaignConfig(name="c",
                              checkpoint=str(tmp_path / "own.jsonl"))]
    report = lint_campaigns(configs)
    cmp001 = [f for f in report if f.rule == "CMP001"]
    assert len(cmp001) == 2  # one finding per colliding campaign
    assert {f.location for f in cmp001} == {"campaign:a:checkpoint",
                                            "campaign:b:checkpoint"}
    assert report.exit_code() == 1


def test_cmp002_zero_timeout_is_error():
    report = lint_campaigns([CampaignConfig(name="a", unit_timeout=0.0)])
    cmp002 = [f for f in report if f.rule == "CMP002"]
    assert len(cmp002) == 1
    assert cmp002[0].severity is Severity.ERROR


def test_cmp002_implausibly_small_timeout_is_warning():
    report = lint_campaigns([CampaignConfig(name="a", unit_timeout=0.001)])
    cmp002 = [f for f in report if f.rule == "CMP002"]
    assert len(cmp002) == 1
    assert cmp002[0].severity is Severity.WARNING


def test_cmp002_bad_fallback_jobs_and_retries():
    report = lint_campaigns([
        CampaignConfig(name="a", unit_timeout=10.0, fallback_timeout=0.0,
                       jobs=0, max_retries=-1),
    ])
    locations = {f.location for f in report if f.rule == "CMP002"}
    assert locations == {"campaign:a:fallback_timeout",
                         "campaign:a:jobs",
                         "campaign:a:max_retries"}


def test_cmp003_reserved_suffixes(tmp_path):
    report = lint_campaigns([
        CampaignConfig(name="a", checkpoint=str(tmp_path / "grade.tmp")),
        CampaignConfig(name="b",
                       checkpoint=str(tmp_path / "grade.shard-99")),
    ])
    cmp003 = [f for f in report if f.rule == "CMP003"]
    assert len(cmp003) == 2


def test_cmp003_missing_parent_directory(tmp_path):
    missing = tmp_path / "does-not-exist" / "grade.jsonl"
    report = lint_campaigns([CampaignConfig(name="a",
                                            checkpoint=str(missing))])
    cmp003 = [f for f in report if f.rule == "CMP003"]
    assert len(cmp003) == 1
    assert "does not exist" in cmp003[0].message


def test_from_adapter_reads_runner_configuration(tmp_path):
    """A live campaign adapter is normalised via its CampaignRunner."""
    from repro.dsp.components import component_by_name
    from repro.faults.combsim import CombFaultSimulator
    from repro.faults.model import collapse_faults
    from repro.runtime.campaigns import CombSimCampaign
    netlist = component_by_name("mux7").netlist()
    sim = CombFaultSimulator(netlist, collapse_faults(netlist))
    checkpoint = tmp_path / "mux7.jsonl"
    campaign = CombSimCampaign(
        sim, blocks=[],
        checkpoint=str(checkpoint), unit_timeout=12.5, jobs=1,
    )
    config = CampaignConfig.from_adapter("mux7", campaign)
    assert config.checkpoint == str(checkpoint)
    assert config.unit_timeout == 12.5
    assert config.jobs == 1
    assert lint_campaigns([config]).findings == []


def test_from_doc_defaults():
    config = CampaignConfig.from_doc({"name": "x"})
    assert config.jobs == 1 and config.max_retries == 2
    assert config.checkpoint is None and config.unit_timeout is None


# ----------------------------------------------------------------------
# CMP004 — chaos-injection policies
# ----------------------------------------------------------------------
def test_cmp004_clean_chaos_block_passes(tmp_path):
    config = CampaignConfig(
        name="soak", checkpoint=str(tmp_path / "soak.jsonl"),
        chaos={"seed": 7, "probability": 0.25,
               "scratch": str(tmp_path / "scratch")},
    )
    assert lint_campaigns([config]).findings == []


def test_cmp004_certain_probability_flagged(tmp_path):
    config = CampaignConfig(
        name="soak", checkpoint=str(tmp_path / "soak.jsonl"),
        chaos={"seed": 7, "probability": 1.0},
    )
    report = lint_campaigns([config])
    cmp004 = [f for f in report if f.rule == "CMP004"]
    assert len(cmp004) == 1
    assert cmp004[0].severity is Severity.ERROR
    assert "probability" in cmp004[0].location


def test_cmp004_missing_seed_flagged(tmp_path):
    config = CampaignConfig(
        name="soak", checkpoint=str(tmp_path / "soak.jsonl"),
        chaos={"probability": 0.25},
    )
    report = lint_campaigns([config])
    assert [f.location for f in report if f.rule == "CMP004"] \
        == ["campaign:soak:chaos.seed"]


def test_cmp004_checkpoint_inside_scratch_flagged(tmp_path):
    scratch = tmp_path / "scratch"
    scratch.mkdir()
    config = CampaignConfig(
        name="soak", checkpoint=str(scratch / "soak.jsonl"),
        chaos={"seed": 7, "scratch": str(scratch)},
    )
    report = lint_campaigns([config])
    cmp004 = [f for f in report if f.rule == "CMP004"]
    assert len(cmp004) == 1
    assert "scratch" in cmp004[0].message


def test_cmp004_non_object_chaos_block_flagged():
    report = lint_campaigns([CampaignConfig(name="a", chaos=[1, 2])])
    assert {f.rule for f in report} == {"CMP004"}


def test_cmp004_no_chaos_block_is_silent():
    assert lint_campaigns([CampaignConfig(name="a")]).findings == []


def test_from_doc_carries_chaos_block():
    config = CampaignConfig.from_doc(
        {"name": "x", "chaos": {"seed": 1}})
    assert config.chaos == {"seed": 1}


# ----------------------------------------------------------------------
# CMP005: self-defeating scheduler-service policies
# ----------------------------------------------------------------------
def test_cmp005_clean_service_block_passes(tmp_path):
    config = CampaignConfig(
        name="svc", checkpoint=str(tmp_path / "svc.jsonl"),
        service={"lease_ttl": 30.0, "heartbeat_interval": 5.0,
                 "max_job_retries": 3,
                 "journal": str(tmp_path / "queue.jsonl")},
    )
    assert lint_campaigns([config]).findings == []


def test_cmp005_ttl_not_longer_than_heartbeat_flagged():
    config = CampaignConfig(
        name="thrash",
        service={"lease_ttl": 2.0, "heartbeat_interval": 5.0})
    report = lint_campaigns([config])
    cmp005 = [f for f in report if f.rule == "CMP005"]
    assert len(cmp005) == 1
    assert cmp005[0].location == "campaign:thrash:service.lease_ttl"
    assert cmp005[0].severity is Severity.ERROR
    assert "expires before its first renewal" in cmp005[0].message


def test_cmp005_non_positive_intervals_flagged():
    config = CampaignConfig(
        name="frozen",
        service={"lease_ttl": 0, "heartbeat_interval": -1.0})
    report = lint_campaigns([config])
    cmp005 = [f for f in report if f.rule == "CMP005"]
    assert {f.location for f in cmp005} == {
        "campaign:frozen:service.lease_ttl",
        "campaign:frozen:service.heartbeat_interval",
    }
    assert all(f.severity is Severity.ERROR for f in cmp005)


def test_cmp005_zero_retry_budget_is_warning():
    config = CampaignConfig(
        name="poison-prone",
        service={"lease_ttl": 30.0, "heartbeat_interval": 5.0,
                 "max_job_retries": 0})
    report = lint_campaigns([config])
    cmp005 = [f for f in report if f.rule == "CMP005"]
    assert len(cmp005) == 1
    assert cmp005[0].severity is Severity.WARNING
    assert "quarantines" in cmp005[0].message


def test_cmp005_journal_inside_chaos_scratch_flagged(tmp_path):
    scratch = tmp_path / "scratch"
    config = CampaignConfig(
        name="self-destructive",
        chaos={"seed": 1, "scratch": str(scratch)},
        service={"lease_ttl": 30.0, "heartbeat_interval": 5.0,
                 "journal": str(scratch / "queue.jsonl")},
    )
    report = lint_campaigns([config])
    cmp005 = [f for f in report if f.rule == "CMP005"]
    assert len(cmp005) == 1
    assert cmp005[0].location == \
        "campaign:self-destructive:service.journal"
    assert cmp005[0].severity is Severity.ERROR


def test_cmp005_journal_outside_chaos_scratch_passes(tmp_path):
    config = CampaignConfig(
        name="separated",
        chaos={"seed": 1, "scratch": str(tmp_path / "scratch")},
        service={"lease_ttl": 30.0, "heartbeat_interval": 5.0,
                 "journal": str(tmp_path / "queue.jsonl")},
    )
    assert lint_campaigns([config]).findings == []


def test_cmp005_non_object_service_block_flagged():
    report = lint_campaigns(
        [CampaignConfig(name="a", service="fast please")])
    assert {f.rule for f in report} == {"CMP005"}


def test_cmp005_no_service_block_is_silent():
    assert lint_campaigns([CampaignConfig(name="a")]).findings == []


def test_from_doc_carries_service_block():
    config = CampaignConfig.from_doc(
        {"name": "x", "service": {"lease_ttl": 10}})
    assert config.service == {"lease_ttl": 10}


# ----------------------------------------------------------------------
# CMP006: self-defeating transport/worker policies
# ----------------------------------------------------------------------
def test_cmp006_clean_transport_block_passes(tmp_path):
    config = CampaignConfig(
        name="dist", checkpoint=str(tmp_path / "dist.jsonl"),
        service={"lease_ttl": 30.0, "heartbeat_interval": 5.0,
                 "max_job_retries": 3},
        transport={"rpc_timeout": 2.0, "max_attempts": 4,
                   "deadline": 30.0,
                   "artifacts": str(tmp_path / "artifacts")},
    )
    assert lint_campaigns([config]).findings == []


def test_cmp006_rpc_timeout_at_heartbeat_cadence_flagged():
    config = CampaignConfig(
        name="starved",
        service={"lease_ttl": 30.0, "heartbeat_interval": 5.0},
        transport={"rpc_timeout": 5.0, "max_attempts": 4,
                   "deadline": 30.0})
    report = lint_campaigns([config])
    cmp006 = [f for f in report if f.rule == "CMP006"]
    assert len(cmp006) == 1
    assert cmp006[0].location == "campaign:starved:transport.rpc_timeout"
    assert cmp006[0].severity is Severity.ERROR
    assert "lease expires" in cmp006[0].message


def test_cmp006_non_positive_rpc_timeout_flagged():
    config = CampaignConfig(
        name="instant",
        transport={"rpc_timeout": 0.0, "max_attempts": 4,
                   "deadline": 30.0})
    report = lint_campaigns([config])
    cmp006 = [f for f in report if f.rule == "CMP006"]
    assert len(cmp006) == 1
    assert cmp006[0].location == "campaign:instant:transport.rpc_timeout"


def test_cmp006_zero_retry_budget_flagged():
    config = CampaignConfig(
        name="fragile",
        transport={"rpc_timeout": 2.0, "max_attempts": 0,
                   "deadline": 30.0})
    report = lint_campaigns([config])
    cmp006 = [f for f in report if f.rule == "CMP006"]
    assert len(cmp006) == 1
    assert cmp006[0].location == "campaign:fragile:transport.max_attempts"
    assert cmp006[0].severity is Severity.ERROR


def test_cmp006_deadline_below_one_attempt_flagged():
    config = CampaignConfig(
        name="hopeless",
        transport={"rpc_timeout": 5.0, "max_attempts": 4,
                   "deadline": 1.0})
    report = lint_campaigns([config])
    cmp006 = [f for f in report if f.rule == "CMP006"]
    assert len(cmp006) == 1
    assert cmp006[0].location == "campaign:hopeless:transport.deadline"


def test_cmp006_artifacts_inside_chaos_scratch_flagged(tmp_path):
    scratch = tmp_path / "scratch"
    config = CampaignConfig(
        name="self-destructive",
        chaos={"seed": 1, "scratch": str(scratch)},
        transport={"rpc_timeout": 2.0, "max_attempts": 4,
                   "deadline": 30.0,
                   "artifacts": str(scratch / "artifacts")},
    )
    report = lint_campaigns([config])
    cmp006 = [f for f in report if f.rule == "CMP006"]
    assert len(cmp006) == 1
    assert cmp006[0].location == \
        "campaign:self-destructive:transport.artifacts"
    assert cmp006[0].severity is Severity.ERROR


def test_cmp006_artifacts_outside_chaos_scratch_passes(tmp_path):
    config = CampaignConfig(
        name="separated",
        chaos={"seed": 1, "scratch": str(tmp_path / "scratch")},
        transport={"rpc_timeout": 2.0, "max_attempts": 4,
                   "deadline": 30.0,
                   "artifacts": str(tmp_path / "artifacts")},
    )
    assert lint_campaigns([config]).findings == []


def test_cmp006_non_object_transport_block_flagged():
    report = lint_campaigns(
        [CampaignConfig(name="a", transport="tcp please")])
    assert {f.rule for f in report} == {"CMP006"}


def test_cmp006_no_transport_block_is_silent():
    assert lint_campaigns([CampaignConfig(name="a")]).findings == []


def test_from_doc_carries_transport_block():
    config = CampaignConfig.from_doc(
        {"name": "x", "transport": {"rpc_timeout": 2.0}})
    assert config.transport == {"rpc_timeout": 2.0}


def test_cmp006_retry_policy_lint_doc_is_clean(tmp_path):
    """The transport's own default RetryPolicy passes its own lint."""
    from repro.runtime.transport import RetryPolicy
    doc = RetryPolicy().lint_doc()
    doc["artifacts"] = str(tmp_path / "artifacts")
    config = CampaignConfig(
        name="defaults",
        service={"lease_ttl": 30.0, "heartbeat_interval": 6.0},
        transport=doc)
    assert lint_campaigns([config]).findings == []
