"""Regressions for the latent single-core assumptions the family exposed.

Each test here pins a bug that only shows on a *non-paper* design point:
code that silently hardcoded the paper's 16 registers, 8-bit operands,
18-bit accumulators or 4-deep pipeline.  The paper point is asserted
alongside to show the historical behaviour is untouched.
"""

import pytest

from repro.dsp.family import CoreBuild, CoreSpec
from repro.dsp.isa import Instruction, Opcode, encode
from repro.faults.hierarchical import DspFaultUniverse, storage_fault_core
from repro.runtime.campaigns import HierarchicalCampaign, MetricsCampaign
from repro.runtime.integrity import fingerprint_for_netlist
from repro.selftest.generator import DEST_REGS, dest_registers
from repro.selftest.phase2 import observation_register
from repro.selftest.vectors import run_with_misr

SMALL = CoreSpec(n_registers=8, operand_width=4, acc_width=10,
                 pipeline_depth=4, shifter="barrel", adder="ripple")
WIDE_ACC = CoreSpec(n_registers=16, operand_width=6, acc_width=20,
                    pipeline_depth=4, shifter="barrel", adder="ripple")


@pytest.fixture(scope="module")
def small():
    return CoreBuild.get(SMALL)


@pytest.fixture(scope="module")
def wide_acc():
    return CoreBuild.get(WIDE_ACC)


# ----------------------------------------------------------------------
# Component netlist cache must key on the spec, not the component name.
# ----------------------------------------------------------------------
def test_component_netlist_cache_is_spec_keyed(small):
    paper_mux = CoreBuild.get(CoreSpec.paper()).component_by_name("mux7")
    family_mux = small.component_by_name("mux7")
    assert paper_mux.name == family_mux.name == "mux7"
    # Same name, different operand widths — a name-keyed cache would hand
    # back the same netlist for both.
    assert fingerprint_for_netlist(paper_mux.netlist()) != \
        fingerprint_for_netlist(family_mux.netlist())


# ----------------------------------------------------------------------
# Phase 3 / program assembly hardcoded registers 2..11 as destinations.
# ----------------------------------------------------------------------
def test_dest_registers_stay_inside_small_register_file(small):
    regs = dest_registers(small)
    assert regs and all(r < SMALL.n_registers for r in regs)
    assert dest_registers(None) == DEST_REGS == tuple(range(2, 12))


# ----------------------------------------------------------------------
# Phase 2's observation tails hardcoded register 12 — which aliases on a
# register file smaller than the paper's 16.
# ----------------------------------------------------------------------
def test_observation_register_stays_inside_small_register_file(small):
    assert observation_register(None) == 12
    assert observation_register(small) < SMALL.n_registers


# ----------------------------------------------------------------------
# Fault universes hardcoded 16 registers × 8 bits and 18-bit accumulators.
# ----------------------------------------------------------------------
def test_regfile_fault_bits_follow_operand_width(small):
    universe = DspFaultUniverse(components=[], include_regfile=True,
                                build=small)
    reg_faults = [f for f in universe.storage_faults
                  if f.target[0] == "reg"]
    assert reg_faults
    assert max(f.target[1] for f in reg_faults) == SMALL.n_registers - 1
    assert max(f.bit for f in reg_faults) == SMALL.operand_width - 1


def test_accumulator_fault_bits_follow_acc_width(wide_acc):
    universe = DspFaultUniverse(components=["acca"], include_regfile=False,
                                build=wide_acc)
    acc_faults = [f for f in universe.storage_faults
                  if f.target[0] == "acca" and f.kind == "q"]
    assert max(f.bit for f in acc_faults) == WIDE_ACC.acc_width - 1
    # The stuck bit actually lands in the accumulator on the family core.
    top = next(f for f in acc_faults
               if f.bit == WIDE_ACC.acc_width - 1 and f.stuck_at == 1)
    core = storage_fault_core(top, build=wide_acc)
    core.step(encode(Instruction(Opcode.NOP)))
    assert core.state.acc_a >> (WIDE_ACC.acc_width - 1) & 1 == 1


# ----------------------------------------------------------------------
# run_with_misr hardcoded an 8-bit MISR and a 4-NOP drain.
# ----------------------------------------------------------------------
def test_misr_width_and_drain_follow_the_core(small):
    words = [
        encode(Instruction(Opcode.LDI, imm=0xB, dest=1)),
        encode(Instruction(Opcode.OUT, regb=1)),
    ]
    run = run_with_misr(words, build=small)
    assert run.n_vectors == len(words)
    assert 0 < run.signature < (1 << SMALL.operand_width)
    # Without the pipeline-depth drain the OUT never reaches the port, so
    # a zero signature here would mean the drain was dropped.
    empty = run_with_misr([], build=small)
    assert empty.signature == 0


# ----------------------------------------------------------------------
# Campaign fingerprints: family points must not resume each other's (or
# the paper core's) checkpoints, while pre-family paper checkpoints must
# still resume.
# ----------------------------------------------------------------------
def test_metrics_fingerprint_stamps_only_family_cores(small):
    family_fp = MetricsCampaign(build=small).fingerprint()
    assert family_fp["core"] == SMALL.label()
    assert "core" not in MetricsCampaign().fingerprint()
    assert "core" not in \
        MetricsCampaign(build=CoreBuild.get(CoreSpec.paper())).fingerprint()


def test_hierarchical_fingerprint_stamps_only_family_cores(small):
    from repro.faults.hierarchical import HierarchicalFaultSimulator
    words = [encode(Instruction(Opcode.NOP))] * 4
    universe = DspFaultUniverse(components=["mux7"], include_regfile=False,
                                build=small)
    sim = HierarchicalFaultSimulator(universe=universe)
    fp = HierarchicalCampaign(words, simulator=sim).fingerprint()
    assert fp["core"] == SMALL.label()
    assert "core" not in HierarchicalCampaign(words).fingerprint()
