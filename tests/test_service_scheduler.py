"""Tests for the crash-safe campaign scheduler service."""

import json
import os

import pytest

from repro.runtime import chaos
from repro.runtime.errors import (
    CampaignError,
    ConfigError,
    IntegrityError,
)
from repro.runtime.integrity import check_journal
from repro.runtime.queue import JobJournal
from repro.runtime.service import (
    JOB_KINDS,
    JobSpec,
    SchedulerService,
    ServiceConfig,
    ServiceWorker,
    job_kind,
    journal_status,
    run_service_soak,
    serve_until_drained,
    service_job_units,
    verify_journal,
)


@pytest.fixture(autouse=True)
def no_leftover_monkey():
    chaos.uninstall()
    yield
    chaos.uninstall()


class Clock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_service(tmp_path, clock=None, **overrides):
    config = ServiceConfig(**{
        "lease_ttl": 30.0, "heartbeat_interval": 5.0,
        "max_job_retries": 2, "backoff_base": 1.0, "backoff_max": 8.0,
        **overrides,
    })
    return SchedulerService(
        str(tmp_path / "svc.jsonl"), config=config,
        clock=clock if clock is not None else Clock())


def soak_spec(tmp_path, job_id="a", seed=1, n_units=3, kind="soak"):
    return JobSpec(job_id=job_id, kind=kind, seed=seed, n_units=n_units,
                   checkpoint=str(tmp_path / f"{job_id}.jsonl"))


# ----------------------------------------------------------------------
# Submission
# ----------------------------------------------------------------------
def test_submit_is_idempotent_by_job_id(tmp_path):
    service = make_service(tmp_path)
    first = service.submit(soak_spec(tmp_path))
    second = service.submit(soak_spec(tmp_path))
    assert first is second
    _, events, _ = service.journal.load()
    assert sum(1 for e in events if e["event"] == "submit") == 1


def test_submit_unknown_kind_rejected(tmp_path):
    service = make_service(tmp_path)
    with pytest.raises(ConfigError, match="kind"):
        service.submit(JobSpec(job_id="x", kind="nope"))


def test_config_validation():
    with pytest.raises(ConfigError):
        ServiceConfig(lease_ttl=0).validate()
    with pytest.raises(ConfigError):
        ServiceConfig(heartbeat_interval=-1).validate()
    with pytest.raises(ConfigError):
        ServiceConfig(max_job_retries=-1).validate()


def test_backoff_schedule_caps():
    config = ServiceConfig(backoff_base=1.0, backoff_factor=2.0,
                           backoff_max=5.0)
    assert [config.backoff(k) for k in (1, 2, 3, 4)] == \
        [1.0, 2.0, 4.0, 5.0]


# ----------------------------------------------------------------------
# Happy path
# ----------------------------------------------------------------------
def test_worker_runs_job_to_completion(tmp_path):
    service = make_service(tmp_path)
    service.submit(soak_spec(tmp_path, n_units=4))
    worker = ServiceWorker(service, "w1")
    assert worker.run_next() == "done"
    assert worker.run_next() is None
    state = service.jobs["a"]
    assert state.status == "done"
    assert state.summary["units"]["ok"] == 4
    assert verify_journal(service.journal.path,
                          require_terminal=True) == []


def test_fifo_order_over_pending_jobs(tmp_path):
    service = make_service(tmp_path)
    for name in ("first", "second"):
        service.submit(soak_spec(tmp_path, job_id=name))
    leased = service.lease_next("w1")
    assert leased is not None
    assert leased[0].spec.job_id == "first"


def test_cancel_fences_the_in_flight_worker(tmp_path):
    service = make_service(tmp_path)
    service.submit(soak_spec(tmp_path))
    state, lease = service.lease_next("w1")
    assert service.cancel("a")
    assert service.heartbeat("a", lease.token) is False
    assert service.complete("a", lease.token, {}) is False
    _, events, _ = service.journal.load()
    assert any(e["event"] == "fenced" for e in events)
    assert service.jobs["a"].status == "cancelled"
    assert not service.cancel("a")  # already terminal


def test_cancel_of_unleased_job_replays_cleanly(tmp_path):
    """A cancel carries no fencing token (it is scheduler-originated):
    replay and verify must not mistake it for a stale worker write."""
    clock = Clock()
    service = make_service(tmp_path, clock=clock)
    service.submit(soak_spec(tmp_path))
    assert service.cancel("a")
    assert verify_journal(service.journal.path,
                          require_terminal=True) == []
    service.close()
    reborn = make_service(tmp_path, clock=clock)
    assert reborn.jobs["a"].status == "cancelled"


# ----------------------------------------------------------------------
# Crash recovery by journal replay
# ----------------------------------------------------------------------
def test_restart_replays_jobs_and_bumps_epoch(tmp_path):
    clock = Clock()
    service = make_service(tmp_path, clock=clock)
    service.submit(soak_spec(tmp_path, job_id="x"))
    service.submit(soak_spec(tmp_path, job_id="y"))
    ServiceWorker(service, "w1").run_next()  # x completes
    service.close()

    reborn = make_service(tmp_path, clock=clock)
    assert reborn.epoch == service.epoch + 1
    assert reborn.jobs["x"].status == "done"
    assert reborn.jobs["y"].status == "pending"


def test_stale_epoch_lease_reclaimed_immediately(tmp_path):
    """A SIGKILLed scheduler's in-process worker died with it: the
    restart reclaims its lease at once, no TTL wait."""
    clock = Clock()
    service = make_service(tmp_path, clock=clock)
    service.submit(soak_spec(tmp_path))
    service.lease_next("w1")  # lease, then "SIGKILL" (just drop it)
    service.close()

    reborn = make_service(tmp_path, clock=clock)
    assert reborn.jobs["a"].status == "leased"
    reclaimed = reborn.tick()
    assert reclaimed == ["a"]
    assert reborn.jobs["a"].status == "pending"
    _, events, _ = reborn.journal.load()
    reclaim = [e for e in events if e["event"] == "reclaim"][-1]
    assert reclaim["reason"] == "stale-epoch"


def test_reclaimed_job_resumes_exactly_once_per_unit(tmp_path):
    """The re-leased job resumes from its hash-chained checkpoint:
    units graded before the crash are never re-executed."""
    clock = Clock()
    service = make_service(tmp_path, clock=clock)
    spec = soak_spec(tmp_path, n_units=5)
    service.submit(spec)

    # First attempt: grade 2 units, then die (run the campaign directly
    # with max_units as the deterministic stand-in for a kill).
    from repro.runtime.runner import CampaignRunner
    from repro.runtime.service import service_job_fingerprint
    state, lease = service.lease_next("w1")
    CampaignRunner(checkpoint=spec.checkpoint).run(
        service_job_units(spec),
        fingerprint=service_job_fingerprint(spec), max_units=2)
    service.close()

    reborn = make_service(tmp_path, clock=clock)
    reborn.tick()  # reclaims the stale-epoch lease
    outcome = ServiceWorker(reborn, "w2").run_next()
    assert outcome == "done"
    counts = reborn.jobs["a"].summary["units"]
    assert counts["ok"] == 5
    assert counts["resumed"] == 2   # the pre-crash units
    assert counts["executed"] == 3  # only the remainder ran again


def test_torn_journal_tail_repaired_on_restart(tmp_path):
    clock = Clock()
    service = make_service(tmp_path, clock=clock)
    service.submit(soak_spec(tmp_path))
    service.close()
    with open(service.journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "lease", "job": "a", "tok')  # torn

    reborn = make_service(tmp_path, clock=clock)
    assert reborn.jobs["a"].status == "pending"  # torn lease discarded
    assert ServiceWorker(reborn, "w1").run_next() == "done"
    assert verify_journal(reborn.journal.path,
                          require_terminal=True) == []


# ----------------------------------------------------------------------
# Expiry, heartbeats, fencing
# ----------------------------------------------------------------------
def test_expired_lease_reclaimed_and_holder_fenced(tmp_path):
    clock = Clock()
    service = make_service(tmp_path, clock=clock, lease_ttl=10.0)
    service.submit(soak_spec(tmp_path))
    state, lease = service.lease_next("w1")
    clock.advance(11.0)
    assert service.tick() == ["a"]
    # The zombie holder's writes are fenced off, not applied.
    assert service.heartbeat("a", lease.token) is False
    assert service.complete("a", lease.token, {}) is False
    assert service.jobs["a"].status == "pending"
    assert service.jobs["a"].reclaims == 1


def test_heartbeat_renews_and_journals(tmp_path):
    clock = Clock()
    service = make_service(tmp_path, clock=clock, lease_ttl=10.0)
    service.submit(soak_spec(tmp_path))
    _, lease = service.lease_next("w1")
    clock.advance(8.0)
    assert service.heartbeat("a", lease.token) is True
    clock.advance(8.0)  # only in-budget because the renewal landed
    assert service.heartbeat("a", lease.token) is True
    _, events, _ = service.journal.load()
    assert sum(1 for e in events if e["event"] == "renew") == 2


def test_expired_but_unreclaimed_lease_refuses_renewal(tmp_path):
    """Past the deadline the holder must assume it lost ownership —
    the scheduler may already have re-leased elsewhere."""
    clock = Clock()
    service = make_service(tmp_path, clock=clock, lease_ttl=10.0)
    service.submit(soak_spec(tmp_path))
    _, lease = service.lease_next("w1")
    clock.advance(11.0)
    assert service.heartbeat("a", lease.token) is False


# ----------------------------------------------------------------------
# Retry, backoff, poison-job quarantine
# ----------------------------------------------------------------------
@pytest.fixture
def flaky_kind():
    calls = {"n": 0}

    @job_kind("flaky-test")
    def run(spec, heartbeat):
        calls["n"] += 1
        if calls["n"] <= int(spec.params.get("failures", 1)):
            raise ValueError(f"boom {calls['n']}")
        return {"units": {"ok": 0}, "digest": "", "interrupted": False}

    yield calls
    del JOB_KINDS["flaky-test"]


def test_failed_attempt_retries_with_backoff(tmp_path, flaky_kind):
    clock = Clock()
    service = make_service(tmp_path, clock=clock, backoff_base=4.0)
    service.submit(JobSpec(job_id="f", kind="flaky-test",
                           params={"failures": 1}))
    worker = ServiceWorker(service, "w1")
    assert worker.run_next() == "failed"
    state = service.jobs["f"]
    assert state.status == "pending"
    assert state.failures == 1
    assert "boom 1" in state.error
    # Backoff gates the re-lease until retry_at passes.
    assert service.lease_next("w1") is None
    clock.advance(4.5)
    assert worker.run_next() == "done"
    assert state.status == "done"


def test_poison_job_quarantined_after_budget(tmp_path, flaky_kind):
    clock = Clock()
    service = make_service(tmp_path, clock=clock, max_job_retries=2,
                           backoff_base=1.0)
    service.submit(JobSpec(job_id="f", kind="flaky-test",
                           params={"failures": 99}))
    worker = ServiceWorker(service, "w1")
    outcomes = []
    for _ in range(3):
        outcomes.append(worker.run_next())
        clock.advance(10.0)
    assert outcomes == ["failed", "failed", "failed"]
    state = service.jobs["f"]
    assert state.status == "quarantined"
    assert state.failures == 3
    assert worker.run_next() is None  # never leased again
    _, events, _ = service.journal.load()
    final = [e for e in events if e["event"] == "fail"][-1]
    assert final["final"] is True


def test_reclaims_do_not_consume_the_retry_budget(tmp_path):
    clock = Clock()
    service = make_service(tmp_path, clock=clock, lease_ttl=5.0,
                           max_job_retries=0)
    service.submit(soak_spec(tmp_path))
    for _ in range(4):  # repeated infrastructure losses
        service.lease_next("w1")
        clock.advance(6.0)
        assert service.tick() == ["a"]
    state = service.jobs["a"]
    assert state.reclaims == 4
    assert state.failures == 0
    assert state.status == "pending"  # still healthy, still runnable


# ----------------------------------------------------------------------
# Drain
# ----------------------------------------------------------------------
def test_drain_releases_in_flight_job_and_resumes_later(tmp_path):
    clock = Clock()
    service = make_service(tmp_path, clock=clock)
    service.submit(soak_spec(tmp_path, n_units=6))

    # Ask for drain from "outside" after the second unit completes.
    units = {"done": 0}
    original = JOB_KINDS["soak"]

    def draining_soak(spec, heartbeat):
        def counting_heartbeat():
            units["done"] += 1
            if units["done"] == 2:
                service.request_drain()
            return heartbeat()
        return original(spec, counting_heartbeat)

    JOB_KINDS["soak"] = draining_soak
    try:
        outcome = serve_until_drained(service, sleep=lambda s: None)
    finally:
        JOB_KINDS["soak"] = original
    assert outcome == "drained"
    state = service.jobs["a"]
    assert state.status == "pending"  # released, not failed
    assert state.failures == 0
    service.close()

    reborn = make_service(tmp_path, clock=clock)
    reborn.tick()
    assert ServiceWorker(reborn, "w2").run_next() == "done"
    counts = reborn.jobs["a"].summary["units"]
    assert counts["ok"] == 6
    assert counts["resumed"] >= 2  # pre-drain progress survived


def test_serve_until_drained_idle_exit(tmp_path):
    service = make_service(tmp_path)
    service.submit(soak_spec(tmp_path, n_units=2))
    assert serve_until_drained(service, sleep=lambda s: None) == "idle"
    assert service.all_terminal()


# ----------------------------------------------------------------------
# Spool ingest
# ----------------------------------------------------------------------
def test_spool_ingest_and_status(tmp_path):
    service = make_service(tmp_path)
    journal = JobJournal(service.journal.path)
    journal.spool_request(
        {"op": "submit",
         "spec": soak_spec(tmp_path, job_id="sp").to_json()},
        name="sp.json")
    assert service.ingest_spool() == 1
    assert "sp" in service.jobs
    assert journal.spooled_requests() == []  # consumed
    # At-least-once replay of the same request is harmless.
    journal.spool_request(
        {"op": "submit",
         "spec": soak_spec(tmp_path, job_id="sp").to_json()},
        name="sp.json")
    service.ingest_spool()
    _, events, _ = service.journal.load()
    assert sum(1 for e in events if e["event"] == "submit") == 1


def test_status_includes_spooled_jobs(tmp_path):
    service = make_service(tmp_path)
    service.submit(soak_spec(tmp_path, job_id="live"))
    service.journal.spool_request(
        {"op": "submit",
         "spec": soak_spec(tmp_path, job_id="queued").to_json()},
        name="queued.json")
    rows = {r["job"]: r for r in journal_status(service.journal.path)}
    assert rows["live"]["status"] == "pending"
    assert rows["queued"]["status"] == "spooled"


def test_malformed_spool_request_dropped(tmp_path):
    service = make_service(tmp_path)
    service.journal.spool_request(
        {"op": "submit", "spec": {"no_job_id": True}}, name="bad.json")
    assert service.ingest_spool() == 0
    assert service.journal.spooled_requests() == []  # consumed anyway


# ----------------------------------------------------------------------
# The invariant checker on forged journals
# ----------------------------------------------------------------------
def forge(tmp_path, events):
    journal = JobJournal(str(tmp_path / "forged.jsonl"))
    journal.create({})
    for event in events:
        journal.append(dict(event))
    journal.close()
    return journal.path


SPEC = {"job_id": "a", "kind": "soak", "seed": 1, "n_units": 1,
        "checkpoint": None, "params": {}}
LEASE = {"event": "lease", "job": "a", "worker": "w", "token": 1,
         "epoch": 1, "granted": 0.0, "expires": 30.0}


def test_verify_flags_double_lease(tmp_path):
    path = forge(tmp_path, [
        {"event": "submit", "job": "a", "spec": SPEC},
        LEASE,
        {**LEASE, "token": 2, "worker": "thief"},
    ])
    kinds = [v.kind for v in verify_journal(path)]
    assert "double-lease" in kinds


def test_verify_flags_token_reuse(tmp_path):
    path = forge(tmp_path, [
        {"event": "submit", "job": "a", "spec": SPEC},
        LEASE,
        {"event": "release", "job": "a", "token": 1},
        LEASE,  # token 1 again: fencing is broken
    ])
    kinds = [v.kind for v in verify_journal(path)]
    assert "token-reuse" in kinds


def test_verify_flags_resurrected_terminal_job(tmp_path):
    path = forge(tmp_path, [
        {"event": "submit", "job": "a", "spec": SPEC},
        LEASE,
        {"event": "complete", "job": "a", "token": 1, "summary": {}},
        {**LEASE, "token": 2},  # re-leased after terminal: forbidden
    ])
    kinds = [v.kind for v in verify_journal(path)]
    assert "resurrected-terminal" in kinds


def test_verify_flags_fencing_a_live_lease(tmp_path):
    path = forge(tmp_path, [
        {"event": "submit", "job": "a", "spec": SPEC},
        LEASE,  # expires at 30.0
        {"event": "fenced", "job": "a", "token": 1, "op": "complete",
         "time": 5.0},  # fenced while live: the fence itself lied
    ])
    kinds = [v.kind for v in verify_journal(path)]
    assert "fenced-current" in kinds


def test_fencing_an_expired_current_lease_is_legal(tmp_path):
    """A zombie worker outrunning its TTL quotes the *current* token,
    and the fence correctly rejects it — that is not a violation."""
    path = forge(tmp_path, [
        {"event": "submit", "job": "a", "spec": SPEC},
        LEASE,  # expires at 30.0
        {"event": "fenced", "job": "a", "token": 1, "op": "renew",
         "time": 31.0},
        {"event": "reclaim", "job": "a", "token": 1,
         "reason": "expired", "time": 32.0},
    ])
    assert verify_journal(path) == []


def test_verify_flags_unfenced_stale_write(tmp_path):
    path = forge(tmp_path, [
        {"event": "submit", "job": "a", "spec": SPEC},
        LEASE,
        {"event": "complete", "job": "a", "token": 99, "summary": {}},
    ])
    kinds = [v.kind for v in verify_journal(path)]
    assert "stale-write" in kinds


def test_verify_flags_unknown_job_and_double_submit(tmp_path):
    path = forge(tmp_path, [
        {"event": "submit", "job": "a", "spec": SPEC},
        {"event": "submit", "job": "a", "spec": SPEC},
        {"event": "renew", "job": "ghost", "token": 1},
    ])
    kinds = [v.kind for v in verify_journal(path)]
    assert "double-submit" in kinds
    assert "unknown-job" in kinds


def test_verify_require_terminal(tmp_path):
    path = forge(tmp_path, [
        {"event": "submit", "job": "a", "spec": SPEC},
    ])
    assert verify_journal(path) == []
    kinds = [v.kind for v in verify_journal(path, require_terminal=True)]
    assert kinds == ["non-terminal"]


def test_verify_flags_interior_corruption(tmp_path):
    path = forge(tmp_path, [
        {"event": "submit", "job": "a", "spec": SPEC},
        {"event": "drain"},
    ])
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text.replace('"job": "a"', '"job": "b"'))
    kinds = [v.kind for v in verify_journal(path)]
    assert "journal-interior-defect" in kinds


def test_check_journal_raises_integrity_error(tmp_path):
    path = forge(tmp_path, [
        {"event": "submit", "job": "a", "spec": SPEC},
        LEASE,
        {**LEASE, "token": 2},
    ])
    with pytest.raises(IntegrityError, match="double-lease"):
        check_journal(path)


def test_scheduler_refuses_to_replay_a_forged_journal(tmp_path):
    """Strict recovery: running on top of a journal that violates the
    service invariants risks double-grading — fail loudly instead."""
    path = forge(tmp_path, [
        {"event": "submit", "job": "a", "spec": SPEC},
        LEASE,
        {**LEASE, "token": 2},
    ])
    with pytest.raises(CampaignError, match="violation"):
        SchedulerService(path, ServiceConfig(), clock=Clock())


# ----------------------------------------------------------------------
# The service soak (small, deterministic)
# ----------------------------------------------------------------------
def test_service_soak_small_converges_clean(tmp_path):
    report = run_service_soak(seed=11, campaigns=3, n_units=4,
                              scratch=str(tmp_path / "scratch"))
    assert report.ok(), [v.describe() for v in report.violations]
    assert report.n_jobs == 3
    assert report.n_disruptions > 0       # chaos actually happened
    assert sum(report.injections.values()) > 0


def test_service_soak_is_deterministic(tmp_path):
    a = run_service_soak(seed=23, campaigns=2, n_units=3,
                         scratch=str(tmp_path / "a"))
    b = run_service_soak(seed=23, campaigns=2, n_units=3,
                         scratch=str(tmp_path / "b"))
    assert a.to_json() == b.to_json()
