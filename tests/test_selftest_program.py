"""Tests for the test-program IR and vector expansion."""

import pytest

from repro.bist.lfsr import Lfsr
from repro.bist.template import RandomLoad
from repro.dsp.isa import Instruction, Opcode, decode
from repro.selftest.program import ProgramLine, TestProgram
from repro.selftest.vectors import (
    expand_program,
    golden_signature,
    run_with_misr,
    vector_file_lines,
)


def small_program():
    program = TestProgram()
    program.add(RandomLoad(0), phase="wrapper")
    program.add(RandomLoad(1), phase="wrapper")
    program.add(Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
                phase="phase1", covers=[("multiplier", 0)])
    program.add(Instruction(Opcode.OUT, regb=2), phase="wrapper")
    return program


def test_program_lengths_and_sections():
    program = small_program()
    program.add(Instruction(Opcode.LDI, imm=7, dest=3), in_loop=False,
                phase="phase3")
    assert len(program) == 5
    assert len(program.loop_lines) == 4
    assert len(program.one_shot_lines) == 1
    assert program.n_vectors(10) == 1 + 40


def test_covered_columns_deduplicated():
    program = TestProgram()
    program.add(Instruction(Opcode.NOP), covers=[("a", 0), ("b", 1)])
    program.add(Instruction(Opcode.NOP), covers=[("a", 0)])
    assert program.covered_columns() == [("a", 0), ("b", 1)]


def test_render_figure7_style():
    program = small_program()
    text = program.render()
    assert "ld rnd, R0" in text
    assert "MPYA R0, R1, R2" in text
    assert "multiplier:0" in text
    # Bit codes are 17 characters of 0/1.
    first = text.splitlines()[0].split()[0]
    assert len(first) == 17 and set(first) <= {"0", "1"}


def test_render_marks_one_shot_section():
    program = small_program()
    program.add(Instruction(Opcode.LDI, imm=1, dest=3), in_loop=False)
    text = program.render()
    assert "one-shot" in text
    assert "test loop" in text


def test_expand_program_counts():
    words = expand_program(small_program(), 7)
    assert len(words) == 7 * 4


def test_expand_program_one_shots_first():
    program = small_program()
    program.add(Instruction(Opcode.LDI, imm=0x3C, dest=9), in_loop=False)
    words = expand_program(program, 2)
    first = decode(words[0])
    assert first.opcode is Opcode.LDI and first.imm == 0x3C
    assert len(words) == 1 + 2 * 4


def test_expand_program_rejects_random_one_shot():
    program = TestProgram()
    program.add(Instruction(Opcode.NOP))
    program.add(RandomLoad(0), in_loop=False)
    with pytest.raises(ValueError):
        expand_program(program, 1)


def test_run_with_misr_signature_deterministic():
    program = small_program()
    sig1, n1 = golden_signature(program, 5, lfsr1=Lfsr(16, seed=3),
                                lfsr2=Lfsr(8, seed=4))
    sig2, n2 = golden_signature(program, 5, lfsr1=Lfsr(16, seed=3),
                                lfsr2=Lfsr(8, seed=4))
    assert (sig1, n1) == (sig2, n2)
    assert n1 == 20


def test_misr_signature_detects_faulty_core():
    """A stuck register-file bit must change the self-test signature."""
    from repro.dsp.core import DspCore
    from repro.bist.misr import Misr
    program = TestProgram()
    program.add(RandomLoad(0))
    program.add(RandomLoad(1))
    program.add(Instruction(Opcode.MPYA, rega=0, regb=1, dest=2))
    # Distance > 2 so the `out` reads the register file itself rather than
    # a forwarding bypass.
    program.add(Instruction(Opcode.NOP))
    program.add(Instruction(Opcode.NOP))
    program.add(Instruction(Opcode.OUT, regb=2))
    words = expand_program(program, 10, lfsr1=Lfsr(16, seed=9),
                           mask_registers=False)
    golden = run_with_misr(words).signature

    # Stick the sign bit of R2, the observed MPY destination.
    faulty_core = DspCore(stuck_bits={("reg", 2): (0xFF & ~0x80, 0)})
    misr = Misr(8)
    from repro.dsp.isa import encode
    nop = encode(Instruction(Opcode.NOP))
    for word in words + [nop] * 4:
        misr.absorb(faulty_core.step(word).port)
    assert misr.signature != golden


def test_vector_file_lines():
    lines = vector_file_lines(expand_program(small_program(), 1))
    assert len(lines) == 4
    assert all(len(l) == 17 for l in lines)


def test_run_with_misr_keep_outputs():
    words = expand_program(small_program(), 3)
    run = run_with_misr(words, keep_outputs=True)
    assert len(run.output_stream) == len(words) + 4
    assert run.n_vectors == len(words)
