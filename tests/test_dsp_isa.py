"""Tests for the 17-bit ISA: encoding, decoding, assembly, control words."""

import pytest
from hypothesis import given, strategies as st

from repro._util import bits
from repro.dsp.isa import (
    CONTROL_WIDTH,
    ControlWord,
    Instruction,
    LD_RND,
    N_REGISTERS,
    Opcode,
    PAPER_MNEMONICS,
    UNUSED_OPCODES,
    assemble,
    assemble_program,
    control_word,
    decode,
    decoder_truth_table,
    disassemble,
    encode,
)


def test_opcode_values_are_five_bits():
    for op in Opcode:
        assert 0 <= int(op) < 32


def test_unused_opcodes_exist_for_trapping():
    """The template architecture needs free opcode space for ld-rnd."""
    assert len(UNUSED_OPCODES) >= 4
    assert LD_RND in UNUSED_OPCODES
    assert all(u not in {int(op) for op in Opcode} for u in UNUSED_OPCODES)


def test_format1_encoding():
    instr = Instruction(Opcode.MPYB, rega=0, regb=1, dest=2)
    word = encode(instr)
    assert bits(word, 16, 12) == int(Opcode.MPYB)
    assert bits(word, 11, 8) == 0
    assert bits(word, 7, 4) == 1
    assert bits(word, 3, 0) == 2


def test_format2_encoding():
    instr = Instruction(Opcode.LDI, imm=0x70, dest=3)
    word = encode(instr)
    assert bits(word, 11, 4) == 0x70
    assert bits(word, 3, 0) == 3


def test_decode_unknown_opcode_is_nop():
    word = LD_RND << 12
    assert decode(word).opcode is Opcode.NOP


def test_decode_rejects_wide_words():
    with pytest.raises(ValueError):
        decode(1 << 17)


@given(st.sampled_from(sorted(Opcode)), st.integers(0, 15),
       st.integers(0, 15), st.integers(0, 15), st.integers(0, 255))
def test_encode_decode_roundtrip(op, rega, regb, dest, imm):
    if op is Opcode.LDI:
        instr = Instruction(op, imm=imm, dest=dest)
    else:
        instr = Instruction(op, rega=rega, regb=regb, dest=dest)
    assert decode(encode(instr)) == instr


def test_instruction_field_validation():
    with pytest.raises(ValueError):
        Instruction(Opcode.MPYA, rega=16)
    with pytest.raises(ValueError):
        Instruction(Opcode.LDI, imm=256)


def test_assemble_paper_listing_lines():
    """Lines in the style of the paper's Fig. 7 must assemble."""
    program = assemble_program(
        """
        ; randomisation sequence
        ld 0x70, R3
        MPYB R0, R1, R2
        out R2
        SHIFTB R3, R4
        MACB+ R6, R5, R7
        MACTA- R8, R9, R11
        SHIFTB R8, R15, R10
        mov R3, R4
        outa
        nop
        """
    )
    assert [i.opcode for i in program] == [
        Opcode.LDI, Opcode.MPYB, Opcode.OUT, Opcode.SHIFTB,
        Opcode.MACB_ADD, Opcode.MACTA_SUB, Opcode.SHIFTB, Opcode.MOV,
        Opcode.OUTA, Opcode.NOP,
    ]
    assert program[0].imm == 0x70 and program[0].dest == 3
    assert program[6].rega == 8 and program[6].dest == 10


def test_assemble_rejects_bad_input():
    with pytest.raises(ValueError):
        assemble("FROB R1, R2")
    with pytest.raises(ValueError):
        assemble("ld R1")
    with pytest.raises(ValueError):
        assemble("out 5")
    with pytest.raises(ValueError):
        assemble("nop R1")


@given(st.sampled_from(sorted(Opcode)), st.integers(0, 15),
       st.integers(0, 15), st.integers(0, 15), st.integers(0, 255))
def test_disassemble_assemble_roundtrip(op, rega, regb, dest, imm):
    if op is Opcode.LDI:
        instr = Instruction(op, imm=imm, dest=dest)
    elif op is Opcode.OUT:
        instr = Instruction(op, regb=regb)
    elif op in (Opcode.OUTA, Opcode.OUTB, Opcode.NOP):
        instr = Instruction(op)
    elif op is Opcode.MOV:
        instr = Instruction(op, regb=regb, dest=dest)
    elif op in (Opcode.SHIFTA, Opcode.SHIFTB):
        instr = Instruction(op, rega=rega, dest=dest)
    else:
        instr = Instruction(op, rega=rega, regb=regb, dest=dest)
    assert assemble(disassemble(instr)) == instr


def test_control_word_pack_unpack():
    for op in Opcode:
        cw = control_word(op)
        assert ControlWord.unpack(cw.pack()) == cw
        assert 0 <= cw.pack() < (1 << CONTROL_WIDTH)


def test_control_word_semantics():
    mpy = control_word(Opcode.MPYA)
    assert mpy.muxa_zero == 0 and mpy.muxb_shift == 0
    assert mpy.acc_we == 1 and mpy.accsel == 0 and mpy.mux7_buffer == 0

    mac_sub_b = control_word(Opcode.MACB_SUB)
    assert mac_sub_b.sub == 1 and mac_sub_b.accsel == 1
    assert mac_sub_b.muxb_shift == 1 and mac_sub_b.shmode == 0

    shift = control_word(Opcode.SHIFTA)
    assert shift.muxa_zero == 1 and shift.shmode == 1

    ldi = control_word(Opcode.LDI)
    assert ldi.buf_imm == 1 and ldi.mux7_buffer == 1 and ldi.reg_we == 1
    assert ldi.acc_we == 0

    out = control_word(Opcode.OUT)
    assert out.out_en == 1 and out.reg_we == 0 and out.mux7_buffer == 1

    outb = control_word(Opcode.OUTB)
    assert outb.out_en == 1 and outb.mux7_buffer == 0
    assert outb.muxa_zero == 1 and outb.muxb_shift == 1 and outb.accsel == 1
    assert outb.acc_we == 0


def test_no_instruction_uses_shifter_modes_2_or_3():
    """The paper's E2 study relies on modes '10'/'11' being unreachable."""
    for op in Opcode:
        assert control_word(op).shmode in (0, 1)


def test_truncate_ops():
    for op in (Opcode.MPYTA, Opcode.MACTB_ADD, Opcode.MACTA_SUB):
        assert control_word(op).trunc == 1
    for op in (Opcode.MPYA, Opcode.MACB_ADD):
        assert control_word(op).trunc == 0


def test_decoder_truth_table_covers_all_opcodes():
    table = decoder_truth_table()
    assert set(table) == {int(op) for op in Opcode}
    assert table[int(Opcode.MPYA)] == control_word(Opcode.MPYA).pack()


def test_paper_mnemonics_all_mapped():
    for mnemonic, ops in PAPER_MNEMONICS.items():
        assert ops, mnemonic
        for op in ops:
            assert isinstance(op, Opcode)
