"""Tests for LFSR and MISR models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bist.lfsr import Lfsr, PRIMITIVE_TAPS
from repro.bist.misr import Misr


def test_lfsr_rejects_bad_configs():
    with pytest.raises(ValueError):
        Lfsr(1)
    with pytest.raises(ValueError):
        Lfsr(8, seed=0)
    with pytest.raises(ValueError):
        Lfsr(8, taps=(9,))
    with pytest.raises(ValueError):
        Lfsr(21)  # no tabulated polynomial


@pytest.mark.parametrize("width", [4, 8, 17])
def test_lfsr_is_maximal_length(width):
    """Tabulated polynomials must produce the full 2^n - 1 state cycle."""
    lfsr = Lfsr(width, seed=1)
    seen = set()
    for _ in range(lfsr.period):
        lfsr.step()
        state = lfsr.state
        assert state != 0
        assert state not in seen
        seen.add(state)
    assert len(seen) == (1 << width) - 1
    # After a full period the sequence repeats.
    lfsr.step()
    assert lfsr.state in seen


def test_17_bit_period_matches_paper():
    """Paper: 'all 131,071 test vectors that could be generated'."""
    assert Lfsr(17).period == 131071


def test_all_states_unique():
    states = Lfsr(8, seed=0x42).all_states()
    assert len(states) == 255
    assert len(set(states)) == 255


def test_next_word_bits_lsb_first():
    lfsr = Lfsr(8, seed=0b10000001)
    # First stepped-out bit is the current LSB (1).
    word = lfsr.next_word(4)
    assert word & 1 == 1


def test_determinism():
    a = Lfsr(16, seed=0xBEEF)
    b = Lfsr(16, seed=0xBEEF)
    assert [a.next_word(8) for _ in range(10)] == \
        [b.next_word(8) for _ in range(10)]


def test_next_state_advances_width_bits():
    a = Lfsr(8, seed=3)
    b = Lfsr(8, seed=3)
    a.next_state()
    for _ in range(8):
        b.step()
    assert a.state == b.state


@settings(max_examples=20)
@given(st.integers(1, 2**16 - 1))
def test_seed_sensitivity(seed):
    lfsr = Lfsr(16, seed=seed)
    assert lfsr.state == seed
    lfsr.step()
    assert lfsr.state != 0


def test_misr_distinguishes_streams():
    good = Misr(8).absorb_all([1, 2, 3, 4, 5])
    bad = Misr(8).absorb_all([1, 2, 7, 4, 5])
    assert good != bad


def test_misr_deterministic_and_resettable():
    m = Misr(8, seed=0x10)
    sig1 = m.absorb_all(range(20))
    m.reset(0x10)
    sig2 = m.absorb_all(range(20))
    assert sig1 == sig2
    assert m.signature == sig2


def test_misr_zero_stream_still_mixes_state():
    m = Misr(8, seed=0x01)
    m.absorb_all([0] * 10)
    # State evolves like a plain LFSR under zero input (never sticks).
    assert m.signature != 0x01


def test_misr_aliasing_is_rare():
    """Different single-error streams should (almost) always differ."""
    base = list(range(64))
    good = Misr(8).absorb_all(base)
    collisions = 0
    for i in range(64):
        stream = list(base)
        stream[i] ^= 0x80
        if Misr(8).absorb_all(stream) == good:
            collisions += 1
    assert collisions == 0


def test_misr_bad_width():
    with pytest.raises(ValueError):
        Misr(21)
