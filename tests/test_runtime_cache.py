"""Tests for the shared compile/trace caches (repro.runtime.cache)."""

import random

import pytest

from repro.dsp.components import component_by_name
from repro.faults.combsim import CombFaultSimulator
from repro.faults.model import collapse_faults
from repro.logic.simulator import CombSimulator, pack_patterns
from repro.runtime import cache
from repro.runtime.cache import (
    cache_stats,
    cached_good_values,
    clear_caches,
    compiled_cone,
    compiled_evaluator,
    compiled_evaluator3,
    cone_if_cached,
    netlist_hash,
)


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_caches()
    yield
    clear_caches()


def fresh_netlist(name="mux7"):
    """An independently built netlist (``ComponentSpec.netlist`` caches)."""
    return component_by_name(name).factory()


# ----------------------------------------------------------------------
# Structural hashing
# ----------------------------------------------------------------------
def test_netlist_hash_stable_across_independent_builds():
    a = fresh_netlist()
    b = fresh_netlist()
    assert a is not b
    assert netlist_hash(a) == netlist_hash(b)


def test_netlist_hash_distinguishes_structures():
    mux = component_by_name("mux7").netlist()
    shifter = component_by_name("shifter").netlist()
    assert netlist_hash(mux) != netlist_hash(shifter)


def test_netlist_hash_memoised_and_invalidated_on_growth():
    netlist = fresh_netlist()
    first = netlist_hash(netlist)
    assert netlist._structural_hash[1] == first
    assert netlist_hash(netlist) == first
    # Growing the netlist changes its shape, so the memo is discarded.
    from repro.logic.gates import GateType
    extra = netlist.add_net("extra_for_hash_test")
    netlist.add_gate(GateType.NOT, extra, [netlist.inputs[0]])
    assert netlist_hash(netlist) != first


# ----------------------------------------------------------------------
# Compiled-evaluator dedupe
# ----------------------------------------------------------------------
def test_compiled_evaluator_shared_across_instances():
    a = fresh_netlist()
    b = fresh_netlist()
    assert compiled_evaluator(a) is compiled_evaluator(b)
    stats = cache_stats()
    assert stats["compile_misses"] == 1
    assert stats["compile_hits"] == 1


def test_compiled_evaluator3_cache_is_separate():
    netlist = component_by_name("mux7").netlist()
    two = compiled_evaluator(netlist)
    three = compiled_evaluator3(netlist)
    assert two is not three
    assert compiled_evaluator3(netlist) is three


def test_simulators_share_one_compiled_evaluator():
    """CombFaultSimulator instances over identical netlists compile once."""
    sims = []
    for _ in range(3):
        netlist = fresh_netlist()
        sims.append(CombFaultSimulator(netlist, collapse_faults(netlist)))
    compiled = {id(sim._compiled) for sim in sims}
    assert len(compiled) == 1


# ----------------------------------------------------------------------
# Good-machine trace cache
# ----------------------------------------------------------------------
def block_for(netlist, n_patterns=16, seed=3):
    rng = random.Random(seed)
    return {
        name: [rng.randrange(1 << len(nets)) for _ in range(n_patterns)]
        for name, nets in netlist.buses.items()
        if all(n in netlist.inputs for n in nets)
    }


def test_good_values_cached_across_simulator_instances():
    netlist = fresh_netlist()
    faults = collapse_faults(netlist)
    block = block_for(netlist)
    first = CombFaultSimulator(netlist, faults).good_values(block, 16)
    again = CombFaultSimulator(fresh_netlist(), faults) \
        .good_values(block, 16)
    assert again is first          # replayed by reference, not recomputed
    stats = cache_stats()
    assert stats["trace_misses"] == 1
    assert stats["trace_hits"] == 1
    assert stats["trace_hit_rate"] == 0.5


def test_cached_good_values_matches_direct_simulation():
    netlist = component_by_name("mux7").netlist()
    block = block_for(netlist)
    cached = CombFaultSimulator(netlist, collapse_faults(netlist)) \
        .good_values(block, 16)
    packed = {}
    for name, words in block.items():
        for i, net in enumerate(netlist.buses[name]):
            packed[net] = pack_patterns(words, i)
    direct = CombSimulator(netlist).run(packed, 16)
    assert list(cached) == list(direct)


def test_trace_cache_key_includes_block_and_width():
    netlist = component_by_name("mux7").netlist()
    sim = CombFaultSimulator(netlist, collapse_faults(netlist))
    a = sim.good_values(block_for(netlist, seed=3), 16)
    b = sim.good_values(block_for(netlist, seed=4), 16)
    assert a is not b
    assert cache_stats()["trace_misses"] == 2


def test_trace_cache_lru_bound(monkeypatch):
    monkeypatch.setattr(cache, "TRACE_CACHE_MAX", 2)
    netlist = component_by_name("mux7").netlist()
    sim = CombFaultSimulator(netlist, collapse_faults(netlist))
    for seed in range(4):
        sim.good_values(block_for(netlist, seed=seed), 16)
    assert cache_stats()["trace_blocks"] == 2
    # The evicted first block recomputes (a miss, not a hit).
    sim.good_values(block_for(netlist, seed=0), 16)
    assert cache_stats()["trace_hits"] == 0
    assert cache_stats()["trace_misses"] == 5


def test_clear_caches_resets_everything():
    netlist = component_by_name("mux7").netlist()
    compiled_evaluator(netlist)
    compiled_cone(netlist, netlist.gates[0].output)
    CombFaultSimulator(netlist, collapse_faults(netlist)) \
        .good_values(block_for(netlist), 16)
    clear_caches()
    stats = cache_stats()
    assert stats["compiled_evaluators"] == 0
    assert stats["compiled_cones"] == 0
    assert stats["trace_blocks"] == 0
    assert stats["compile_hits"] == stats["compile_misses"] == 0
    assert stats["cone_hits"] == stats["cone_misses"] == 0
    assert stats["trace_hits"] == stats["trace_misses"] == 0


# ----------------------------------------------------------------------
# Compiled-cone cache (batched fault-simulation engine)
# ----------------------------------------------------------------------
def test_compiled_cone_shared_across_independent_builds():
    a = fresh_netlist()
    b = fresh_netlist()
    net = a.gates[0].output  # identical structures assign identical ids
    assert compiled_cone(a, net) is compiled_cone(b, net)
    stats = cache_stats()
    assert stats["cone_misses"] == 1
    assert stats["cone_hits"] == 1
    assert stats["compiled_cones"] == 1


def test_compiled_cone_keyed_per_site():
    netlist = fresh_netlist()
    sites = [gate.output for gate in netlist.gates[:3]]
    kernels = {id(compiled_cone(netlist, net)) for net in sites}
    assert len(kernels) == len(sites)
    assert cache_stats()["compiled_cones"] == len(sites)


def test_cone_if_cached_peeks_without_compiling():
    netlist = fresh_netlist()
    net = netlist.gates[0].output
    assert cone_if_cached(netlist, net) is None
    # A peek is not a compile decision: absence counts nothing.
    assert cache_stats()["cone_misses"] == 0
    built = compiled_cone(netlist, net)
    assert cone_if_cached(netlist, net) is built
    assert cache_stats()["cone_hits"] == 1


def test_batched_engine_adopts_shared_kernels_during_warmup():
    """A kernel compiled elsewhere is used immediately, warm-up
    threshold notwithstanding (pre-fork warm caches, sibling sims)."""
    from repro.faults.batched import BatchedConeEngine
    netlist = fresh_netlist()
    net = netlist.gates[0].output
    cold = BatchedConeEngine(netlist, compile_threshold=5)
    assert cold.kernel_or_none(net) is None       # warming up
    built = compiled_cone(fresh_netlist(), net)   # a sibling compiles it
    warm = BatchedConeEngine(netlist, compile_threshold=5)
    assert warm.kernel_or_none(net) is built


def test_batched_engine_compiles_after_threshold():
    from repro.faults.batched import BatchedConeEngine
    netlist = fresh_netlist()
    net = netlist.gates[0].output
    engine = BatchedConeEngine(netlist, compile_threshold=2)
    assert engine.kernel_or_none(net) is None
    assert engine.kernel_or_none(net) is None
    kernel = engine.kernel_or_none(net)           # third walk compiles
    assert kernel is not None
    assert cone_if_cached(netlist, net) is kernel
