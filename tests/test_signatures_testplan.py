"""Tests for interval signatures and test planning."""

import pytest

from repro.bist.signatures import (
    IntervalSignatures,
    aliasing_probability,
    diagnose_interval,
    interval_signatures,
)
from repro.selftest.testplan import (
    TestPlan,
    iterations_for_target,
    paper_plan,
    plan_for_target,
)


def test_interval_signature_counts():
    sigs = interval_signatures(list(range(100)), interval=16)
    assert len(sigs.signatures) == 7  # 6 full + 1 tail
    exact = interval_signatures(list(range(96)), interval=16)
    assert len(exact.signatures) == 6


def test_interval_validates():
    with pytest.raises(ValueError):
        interval_signatures([1, 2], interval=0)


def test_first_failing_interval_brackets_error():
    stream = list(range(80))
    golden = interval_signatures(stream, interval=10)
    corrupted = list(stream)
    corrupted[37] ^= 0x40
    observed = interval_signatures(corrupted, interval=10)
    index = golden.first_failing_interval(observed)
    assert index == 3  # cycle 37 lies in interval [30, 40)
    assert diagnose_interval(golden, observed) == (30, 40)


def test_clean_stream_diagnoses_none():
    stream = [5] * 40
    golden = interval_signatures(stream, interval=8)
    assert diagnose_interval(golden, interval_signatures(stream, 8)) is None


def test_error_persists_in_later_signatures():
    """The MISR is not reset per interval, so every signature after the
    corruption differs (no re-aliasing back to clean, generically)."""
    stream = list(range(64))
    corrupted = list(stream)
    corrupted[5] ^= 0x01
    golden = interval_signatures(stream, interval=8)
    observed = interval_signatures(corrupted, interval=8)
    diffs = [a != b for a, b in zip(golden.signatures, observed.signatures)]
    assert diffs[0] is True
    assert sum(diffs) >= len(diffs) - 1


def test_mismatched_schemes_rejected():
    a = interval_signatures([1, 2, 3], 2)
    b = interval_signatures([1, 2, 3], 3)
    with pytest.raises(ValueError):
        a.first_failing_interval(b)


def test_aliasing_probability():
    assert aliasing_probability(8) == pytest.approx(2 ** -8)
    assert aliasing_probability(8, 2) == pytest.approx(2 ** -16)
    with pytest.raises(ValueError):
        aliasing_probability(0)


# ----------------------------------------------------------------------
# Test plans
# ----------------------------------------------------------------------
def test_paper_plan_numbers():
    plan = paper_plan()
    assert plan.n_vectors == 204000
    assert plan.test_time_seconds == pytest.approx(0.408e-3)
    assert "0.408 ms" in plan.describe()


def test_plan_with_one_shots():
    plan = TestPlan(program_length=30, n_iterations=10, n_one_shot=21)
    assert plan.n_vectors == 321
    assert "one-shot" in plan.describe()


def test_iterations_for_target():
    # 100 faults, detected linearly over 1000 vectors, program length 20.
    first_detect = {f"f{i}": i * 10 for i in range(100)}
    iterations = iterations_for_target(first_detect, 1000, 20, 0.5)
    # 50% coverage needs ~500 vectors = 25 iterations.
    assert 24 <= iterations <= 27
    assert iterations_for_target(first_detect, 1000, 20, 1.0) is not None
    none_reachable = {f"f{i}": None for i in range(10)}
    assert iterations_for_target(none_reachable, 100, 5, 0.5) is None


def test_iterations_for_target_validates():
    with pytest.raises(ValueError):
        iterations_for_target({}, 10, 5, 0.0)


def test_plan_for_target_builds_plan():
    first_detect = {f"f{i}": i for i in range(50)}
    plan = plan_for_target(first_detect, 100, 10, 0.9, clock_hz=100e6)
    assert plan is not None
    assert plan.n_iterations >= 5
    assert plan.clock_hz == 100e6
    assert plan_for_target({"a": None}, 10, 5, 0.9) is None
