"""Tests for the resilient campaign runner."""

import threading
import time

import pytest

from repro.runtime.errors import CampaignError, SimulationError, UnitTimeout
from repro.runtime.runner import (
    CampaignRunner,
    UnitResult,
    WorkUnit,
    call_with_timeout,
)


def make_runner(**kwargs):
    """A runner whose backoff sleeps are recorded, not slept."""
    slept = []
    kwargs.setdefault("sleep", slept.append)
    runner = CampaignRunner(**kwargs)
    return runner, slept


def ok_units(n, log=None):
    def make(i):
        def run():
            if log is not None:
                log.append(i)
            return i * 10
        return run
    return [WorkUnit(unit_id=f"u{i}", run=make(i)) for i in range(n)]


# ----------------------------------------------------------------------
# call_with_timeout
# ----------------------------------------------------------------------
def test_call_with_timeout_passes_value_through():
    assert call_with_timeout(lambda: 42, timeout=None) == 42
    assert call_with_timeout(lambda: 42, timeout=5.0) == 42


def test_call_with_timeout_reraises_exceptions():
    def boom():
        raise SimulationError("no")
    with pytest.raises(SimulationError):
        call_with_timeout(boom, timeout=5.0)


def test_call_with_timeout_expires():
    with pytest.raises(UnitTimeout):
        call_with_timeout(lambda: time.sleep(5), timeout=0.02)


# ----------------------------------------------------------------------
# Plain execution and accounting
# ----------------------------------------------------------------------
def test_run_all_ok():
    runner, slept = make_runner()
    report = runner.run(ok_units(4))
    counts = report.counts()
    assert counts == {"ok": 4, "degraded": 0, "quarantined": 0,
                      "total": 4, "executed": 4, "resumed": 0,
                      "retried": 0, "leaked": 0}
    assert report.value("u2") == 20
    assert report["u0"].status == "ok"
    assert not report.interrupted
    assert slept == []


def test_duplicate_unit_ids_rejected():
    runner, _ = make_runner()
    units = [WorkUnit(unit_id="same", run=lambda: 1),
             WorkUnit(unit_id="same", run=lambda: 2)]
    with pytest.raises(CampaignError):
        runner.run(units)


def test_max_units_cutoff_marks_interrupted():
    log = []
    runner, _ = make_runner()
    report = runner.run(ok_units(5, log), max_units=2)
    assert report.interrupted
    assert log == [0, 1]
    assert report.counts()["executed"] == 2


# ----------------------------------------------------------------------
# Retry with exponential backoff
# ----------------------------------------------------------------------
def test_backoff_schedule_shape():
    runner = CampaignRunner(max_retries=5, backoff_base=0.1,
                            backoff_factor=2.0, backoff_max=0.5,
                            sleep=lambda _: None)
    assert runner.backoff_schedule() == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_transient_failure_retried_to_success():
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise SimulationError("transient")
        return "fine"

    runner, slept = make_runner(max_retries=3, backoff_base=0.1,
                                backoff_factor=3.0, backoff_max=10.0)
    report = runner.run([WorkUnit(unit_id="flaky", run=flaky)])
    result = report["flaky"]
    assert result.status == "ok"
    assert result.value == "fine"
    assert result.attempts == 3
    assert slept == pytest.approx([0.1, 0.3])  # before attempts 2 and 3
    assert report.counts()["retried"] == 1


def test_poisoned_unit_quarantined_not_fatal():
    def boom():
        raise SimulationError("poisoned")

    log = []
    runner, slept = make_runner(max_retries=2, backoff_base=0.05,
                                backoff_factor=2.0, backoff_max=2.0)
    units = [WorkUnit(unit_id="bad", run=boom)] + ok_units(2, log)
    report = runner.run(units)
    bad = report["bad"]
    assert bad.status == "quarantined"
    assert bad.attempts == 3
    assert bad.value is None
    assert "poisoned" in bad.error
    assert slept == [0.05, 0.1]          # full backoff schedule consumed
    assert log == [0, 1]                 # later units still ran
    assert report.counts()["quarantined"] == 1
    assert report.counts()["ok"] == 2


def test_unexpected_exception_also_quarantined():
    def boom():
        raise KeyError("not a ReproError")

    runner, _ = make_runner(max_retries=0)
    report = runner.run([WorkUnit(unit_id="bad", run=boom)])
    assert report["bad"].status == "quarantined"
    assert "KeyError" in report["bad"].error


# ----------------------------------------------------------------------
# Timeout → graceful degradation
# ----------------------------------------------------------------------
def test_timeout_falls_back_to_degraded():
    runner, _ = make_runner(unit_timeout=0.02, max_retries=1)
    unit = WorkUnit(unit_id="slow", run=lambda: time.sleep(5),
                    fallback=lambda: "behavioural")
    report = runner.run([unit])
    result = report["slow"]
    assert result.status == "degraded"
    assert result.value == "behavioural"
    assert result.timeouts == 2          # both gate-level attempts timed out
    assert "UnitTimeout" in result.error
    assert report.counts()["degraded"] == 1


def test_failure_without_timeout_does_not_degrade():
    """The fallback is a timeout escape hatch, not an error handler."""
    def boom():
        raise SimulationError("broken, not slow")

    runner, _ = make_runner(max_retries=1)
    unit = WorkUnit(unit_id="bad", run=boom, fallback=lambda: "nope")
    report = runner.run([unit])
    assert report["bad"].status == "quarantined"


def test_failing_fallback_quarantines():
    def slow():
        time.sleep(5)

    def bad_fallback():
        raise SimulationError("fallback broken too")

    runner, _ = make_runner(unit_timeout=0.02, max_retries=0)
    report = runner.run([WorkUnit(unit_id="u", run=slow,
                                  fallback=bad_fallback)])
    assert report["u"].status == "quarantined"
    assert "fallback broken" in report["u"].error


def test_timeout_without_fallback_quarantines():
    runner, _ = make_runner(unit_timeout=0.02, max_retries=0)
    report = runner.run([WorkUnit(unit_id="u", run=lambda: time.sleep(5))])
    assert report["u"].status == "quarantined"
    assert report["u"].timeouts == 1


# ----------------------------------------------------------------------
# Checkpointing and resume
# ----------------------------------------------------------------------
def test_kill_and_resume_executes_nothing_twice(tmp_path):
    path = str(tmp_path / "run.jsonl")
    fingerprint = {"kind": "unit-test", "n": 5}
    log = []

    runner, _ = make_runner(checkpoint=path)
    first = runner.run(ok_units(5, log), fingerprint=fingerprint,
                       max_units=3)
    assert first.interrupted
    assert log == [0, 1, 2]

    runner2, _ = make_runner(checkpoint=path)
    second = runner2.run(ok_units(5, log), fingerprint=fingerprint,
                         resume=True)
    assert not second.interrupted
    assert log == [0, 1, 2, 3, 4]       # units 0-2 never re-ran
    counts = second.counts()
    assert counts["resumed"] == 3
    assert counts["executed"] == 2
    assert [second.value(f"u{i}") for i in range(5)] == [0, 10, 20, 30, 40]

    # A third resume of the complete campaign executes nothing at all.
    runner3, _ = make_runner(checkpoint=path)
    third = runner3.run(ok_units(5, log), fingerprint=fingerprint,
                        resume=True)
    assert log == [0, 1, 2, 3, 4]
    assert third.counts()["executed"] == 0
    assert third.counts()["resumed"] == 5


def test_resume_fingerprint_mismatch_rejected(tmp_path):
    path = str(tmp_path / "run.jsonl")
    runner, _ = make_runner(checkpoint=path)
    runner.run(ok_units(2), fingerprint={"n": 2})
    runner2, _ = make_runner(checkpoint=path)
    with pytest.raises(CampaignError):
        runner2.run(ok_units(3), fingerprint={"n": 3}, resume=True)


def test_resume_without_existing_checkpoint_starts_fresh(tmp_path):
    path = str(tmp_path / "new.jsonl")
    runner, _ = make_runner(checkpoint=path)
    report = runner.run(ok_units(2), fingerprint={"n": 2}, resume=True)
    assert report.counts() == {"ok": 2, "degraded": 0, "quarantined": 0,
                               "total": 2, "executed": 2, "resumed": 0,
                               "retried": 0, "leaked": 0}


def test_run_without_resume_restarts_campaign(tmp_path):
    path = str(tmp_path / "run.jsonl")
    log = []
    runner, _ = make_runner(checkpoint=path)
    runner.run(ok_units(3, log), fingerprint={"n": 3})
    runner2, _ = make_runner(checkpoint=path)
    runner2.run(ok_units(3, log), fingerprint={"n": 3})  # resume not given
    assert log == [0, 1, 2, 0, 1, 2]


def test_quarantined_units_resume_without_retry(tmp_path):
    path = str(tmp_path / "run.jsonl")
    calls = []

    def boom():
        calls.append(1)
        raise SimulationError("still poisoned")

    units = [WorkUnit(unit_id="bad", run=boom)]
    runner, _ = make_runner(checkpoint=path, max_retries=0)
    runner.run(units, fingerprint={})
    assert len(calls) == 1

    runner2, _ = make_runner(checkpoint=path, max_retries=0)
    report = runner2.run(units, fingerprint={}, resume=True)
    assert len(calls) == 1               # not retried by default
    assert report["bad"].status == "quarantined"
    assert report["bad"].resumed

    runner3, _ = make_runner(checkpoint=path, max_retries=0)
    report = runner3.run(units, fingerprint={}, resume=True,
                         retry_quarantined=True)
    assert len(calls) == 2               # explicitly retried
    assert not report["bad"].resumed


def test_degraded_status_survives_resume(tmp_path):
    path = str(tmp_path / "run.jsonl")
    runner, _ = make_runner(checkpoint=path, unit_timeout=0.02,
                            max_retries=0)
    units = [WorkUnit(unit_id="slow", run=lambda: time.sleep(5),
                      fallback=lambda: "cheap")]
    runner.run(units, fingerprint={})

    runner2, _ = make_runner(checkpoint=path)
    report = runner2.run(units, fingerprint={}, resume=True)
    result = report["slow"]
    assert result.resumed
    assert result.status == "degraded"
    assert result.value == "cheap"
    assert report.counts()["degraded"] == 1


def test_summary_line_mentions_every_status():
    report_ok = CampaignRunner(sleep=lambda _: None).run(ok_units(2))
    text = report_ok.summary()
    assert "2 units" in text and "2 ok" in text
    report_ok.interrupted = True
    assert "[interrupted]" in report_ok.summary()


def test_unit_result_record_roundtrip():
    original = UnitResult(unit_id="u", status="degraded", value=[1, 2],
                          attempts=3, timeouts=2, error="UnitTimeout: x",
                          elapsed=1.25)
    restored = UnitResult.from_record(original.record())
    assert restored.unit_id == "u"
    assert restored.status == "degraded"
    assert restored.value == [1, 2]
    assert restored.attempts == 3
    assert restored.timeouts == 2
    assert restored.resumed


# ----------------------------------------------------------------------
# Leaked-thread accounting and state isolation
# ----------------------------------------------------------------------
def test_timeout_attaches_zombie_thread():
    release = threading.Event()
    try:
        with pytest.raises(UnitTimeout) as info:
            call_with_timeout(release.wait, timeout=0.02)
        thread = info.value.thread
        assert thread.daemon
        assert thread.is_alive()
    finally:
        release.set()


def test_timed_out_unit_records_leaked_threads():
    release = threading.Event()
    try:
        runner, _ = make_runner(unit_timeout=0.02, max_retries=1)
        report = runner.run([WorkUnit(unit_id="hang", run=release.wait)])
        result = report["hang"]
        assert result.status == "quarantined"
        assert result.timeouts == 2
        assert result.leaked_threads == 2     # one zombie per attempt
        assert runner.leaked_thread_count() == 2
    finally:
        release.set()
    for _ in range(100):                      # zombies die once released
        if runner.leaked_thread_count() == 0:
            break
        time.sleep(0.01)
    assert runner.leaked_thread_count() == 0


def test_fast_unit_leaks_nothing():
    runner, _ = make_runner(unit_timeout=5.0)
    report = runner.run(ok_units(3))
    assert all(r.leaked_threads == 0 for r in report.results.values())
    assert runner.leaked_thread_count() == 0


def test_leaked_threads_survive_checkpoint_roundtrip(tmp_path):
    release = threading.Event()
    path = str(tmp_path / "run.jsonl")
    try:
        runner, _ = make_runner(checkpoint=path, unit_timeout=0.02,
                                max_retries=0)
        runner.run([WorkUnit(unit_id="hang", run=release.wait,
                             fallback=lambda: "cheap")])
    finally:
        release.set()
    runner2, _ = make_runner(checkpoint=path)
    report = runner2.run([WorkUnit(unit_id="hang", run=lambda: 1)],
                         resume=True)
    assert report["hang"].resumed
    assert report["hang"].leaked_threads >= 1


def test_reset_hook_called_per_timeout_before_next_attempt():
    release = threading.Event()
    events = []
    try:
        runner, _ = make_runner(unit_timeout=0.02, max_retries=1)
        unit = WorkUnit(
            unit_id="hang",
            run=lambda: (events.append("attempt"), release.wait())[1],
            fallback=lambda: events.append("fallback") or "ok",
            reset=lambda: events.append("reset"),
        )
        report = runner.run([unit])
    finally:
        release.set()
    assert report["hang"].status == "degraded"
    # Shared state is restored after every timed-out attempt, before
    # the next attempt (or the fallback) can observe it.
    assert events == ["attempt", "reset", "attempt", "reset", "fallback"]


def test_reset_hook_failure_is_swallowed():
    release = threading.Event()
    try:
        runner, _ = make_runner(unit_timeout=0.02, max_retries=0)
        unit = WorkUnit(
            unit_id="hang", run=release.wait,
            fallback=lambda: "cheap",
            reset=lambda: (_ for _ in ()).throw(RuntimeError("reset boom")),
        )
        report = runner.run([unit])
    finally:
        release.set()
    assert report["hang"].status == "degraded"
    assert report["hang"].value == "cheap"


def test_reset_not_called_on_clean_units():
    calls = []
    runner, _ = make_runner(unit_timeout=5.0)
    units = [WorkUnit(unit_id="ok", run=lambda: 1,
                      reset=lambda: calls.append("reset"))]
    report = runner.run(units)
    assert report["ok"].status == "ok"
    assert calls == []
