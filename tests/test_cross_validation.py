"""Cross-validation of the simulation stack, two ways.

DESIGN.md promises that the Tetramax-substitute (component-local gate-level
detection + behavioural propagation) is validated against exact flat
gate-level sequential fault simulation.  The first half of this module
grades the *same* instruction stream both ways — the flat core
fault-parallel, the hierarchical simulator per component — and compares
coverage per datapath region (the flat core's gates carry region
provenance labels).

The second half is a seeded differential sweep over structurally random
netlists (:mod:`repro.logic.random_nets`): the interpreted simulator,
the compiled evaluator and the sequential engine must agree
bit-for-bit, pattern-parallel, across hundreds of seeds.  Any
disagreeing netlist is dumped to ``tests/artifacts/`` as a JSON repro
artifact (re-loadable via ``repro.lint.artifacts.netlist_from_doc``)
before the assertion fires.
"""

import json
import random
from collections import defaultdict
from pathlib import Path

import pytest

from repro.bist.template import RandomLoad, TemplateArchitecture
from repro.dsp.gatelevel import make_gatelevel_core
from repro.dsp.isa import Instruction, Opcode
from repro.faults.hierarchical import HierarchicalFaultSimulator
from repro.faults.seqsim import SeqFaultSimulator
from repro.lint.artifacts import netlist_from_doc
from repro.logic.compiled import CompiledEvaluator
from repro.logic.random_nets import netlist_to_doc, random_netlist
from repro.logic.sequential import SequentialSimulator
from repro.logic.simulator import CombSimulator

#: Regions compared; others are either too small for rates to be stable
#: (truncater region: 2 flat faults) or differ in fault-model scope.
COMPARED = (
    "multiplier", "shifter", "addsub", "acca", "accb", "regfile",
    "muxa", "muxb", "muxg_shifter", "muxg_limiter", "limiter",
    "mux7", "macreg", "buffer",
)
TOLERANCE = 0.12


def stream():
    program = [
        RandomLoad(0), RandomLoad(1),
        Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
        Instruction(Opcode.OUT, regb=2),
        Instruction(Opcode.MACB_SUB, rega=0, regb=1, dest=3),
        Instruction(Opcode.OUT, regb=3),
        Instruction(Opcode.SHIFTA, rega=0, dest=4),
        Instruction(Opcode.OUT, regb=4),
        Instruction(Opcode.OUTA),
        Instruction(Opcode.OUTB),
    ]
    return TemplateArchitecture(program).expand(8)


@pytest.fixture(scope="module")
def both_runs():
    words = stream()
    flat = make_gatelevel_core()
    flat_result = SeqFaultSimulator(flat).run_sequence({"instr": words})
    flat_by_region = defaultdict(lambda: [0, 0])
    for fault, cycle in flat_result.first_detect_cycle.items():
        region = flat.net_regions.get(fault.net)
        if region is None:
            continue
        flat_by_region[region][1] += 1
        flat_by_region[region][0] += cycle is not None
    hier = HierarchicalFaultSimulator().run(words)
    return flat_by_region, hier.coverage_report().by_component


def test_per_component_coverage_agreement(both_runs):
    flat_by_region, hier_by_component = both_runs
    disagreements = []
    for component in COMPARED:
        flat_detected, flat_total = flat_by_region[component]
        if flat_total < 20:
            continue
        hier_detected, hier_total = hier_by_component[component]
        flat_rate = flat_detected / flat_total
        hier_rate = hier_detected / hier_total
        if abs(flat_rate - hier_rate) > TOLERANCE:
            disagreements.append(
                f"{component}: flat {flat_rate:.1%} vs "
                f"hierarchical {hier_rate:.1%}"
            )
    assert not disagreements, disagreements


def test_major_components_closely_matched(both_runs):
    """The big structures must agree tightly, not just within tolerance."""
    flat_by_region, hier_by_component = both_runs
    for component in ("multiplier", "shifter", "regfile"):
        flat_detected, flat_total = flat_by_region[component]
        hier_detected, hier_total = hier_by_component[component]
        assert abs(flat_detected / flat_total
                   - hier_detected / hier_total) < 0.05, component


def test_flat_universe_carries_region_labels():
    flat = make_gatelevel_core()
    labelled = set(flat.net_regions.values())
    for component in COMPARED:
        assert component in labelled, component


# ----------------------------------------------------------------------
# Seeded differential sweep: interpreted vs compiled vs sequential
# ----------------------------------------------------------------------
N_COMB_CASES = 140
N_SEQ_CASES = 60
N_PATTERNS = 8
ARTIFACT_DIR = Path(__file__).parent / "artifacts"


def _dump_failure(netlist, seed, **extra):
    """Write a failing netlist as a replayable JSON repro artifact."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    doc = netlist_to_doc(netlist)
    doc["xval"] = {"seed": seed, **extra}
    path = ARTIFACT_DIR / f"xval_{netlist.name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def _comb_netlist(seed):
    return random_netlist(seed, n_inputs=4 + seed % 5,
                          n_gates=24 + seed % 33, n_dffs=0)


def _seq_netlist(seed):
    return random_netlist(1000 + seed, n_inputs=3 + seed % 4,
                          n_gates=20 + seed % 21, n_dffs=2 + seed % 4,
                          name=f"randseq{seed}")


def _stimulus(netlist, seed, n_patterns=N_PATTERNS):
    rng = random.Random(("stimulus", seed).__repr__())
    return {net: rng.randrange(1 << n_patterns) for net in netlist.inputs}


@pytest.mark.parametrize("seed", range(N_COMB_CASES))
def test_interpreted_vs_compiled_bit_for_bit(seed):
    """CombSimulator and CompiledEvaluator agree on every net, every bit."""
    netlist = _comb_netlist(seed)
    inputs = _stimulus(netlist, seed)
    interpreted = CombSimulator(netlist).run(inputs, N_PATTERNS)
    compiled = CompiledEvaluator(netlist).run(inputs, N_PATTERNS)
    if interpreted != compiled:
        bad = [netlist.net_names[n] for n in range(netlist.n_nets)
               if interpreted[n] != compiled[n]]
        path = _dump_failure(netlist, seed, engine="compiled",
                             inputs={str(k): v for k, v in inputs.items()},
                             mismatched_nets=bad)
        pytest.fail(f"seed {seed}: {len(bad)} net(s) disagree "
                    f"(first: {bad[:5]}); repro dumped to {path}")


@pytest.mark.parametrize("seed", range(N_SEQ_CASES))
def test_sequential_engine_vs_reference_stepping(seed):
    """The sequential engine (compiled fast path and the interpreted
    forcing path) matches manual CombSimulator + DFF-update stepping."""
    netlist = _seq_netlist(seed)
    n_cycles = 6
    mask = (1 << N_PATTERNS) - 1
    engine = SequentialSimulator(netlist, n_patterns=N_PATTERNS)
    # Identity forcing on an input net pushes every cycle down the
    # interpreted path without changing any value.
    forced_engine = SequentialSimulator(netlist, n_patterns=N_PATTERNS)
    identity = {netlist.inputs[0]: (mask, 0)}
    reference = CombSimulator(netlist)
    state = {dff.q: (mask if dff.init else 0) for dff in netlist.dffs}
    per_cycle_inputs = []
    for cycle in range(n_cycles):
        inputs = _stimulus(netlist, (seed, cycle))
        per_cycle_inputs.append({str(k): v for k, v in inputs.items()})
        got = engine.step(inputs)
        got_forced = forced_engine.step(inputs, force_masks=identity)
        want = reference.run(inputs, N_PATTERNS, state=state)
        if got != want or got_forced != want:
            path = _dump_failure(netlist, seed, engine="sequential",
                                 cycle=cycle, inputs=per_cycle_inputs)
            pytest.fail(f"seed {seed}: divergence at cycle {cycle}; "
                        f"repro dumped to {path}")
        state = {dff.q: want[dff.d] & mask for dff in netlist.dffs}
    assert engine.state == state == forced_engine.state


@pytest.mark.parametrize("seed", [0, 3, 7, 11])
def test_repro_artifact_round_trip(seed):
    """netlist_to_doc → netlist_from_doc reproduces the simulation."""
    netlist = _seq_netlist(seed)
    clone = netlist_from_doc(netlist_to_doc(netlist))
    clone.validate()
    inputs = _stimulus(netlist, seed)
    clone_inputs = {clone.net_id(netlist.net_names[n]): v
                    for n, v in inputs.items()}
    original = SequentialSimulator(netlist, n_patterns=N_PATTERNS)
    replayed = SequentialSimulator(clone, n_patterns=N_PATTERNS)
    for _ in range(4):
        want = original.step(inputs)
        got = replayed.step(clone_inputs)
        assert [want[n] for n in netlist.outputs] == \
            [got[clone.net_id(netlist.net_names[n])] for n in netlist.outputs]
