"""Cross-validation of the hierarchical fault simulator.

DESIGN.md promises that the Tetramax-substitute (component-local gate-level
detection + behavioural propagation) is validated against exact flat
gate-level sequential fault simulation.  This test grades the *same*
instruction stream both ways — the flat core fault-parallel, the
hierarchical simulator per component — and compares coverage per datapath
region (the flat core's gates carry region provenance labels).
"""

from collections import defaultdict

import pytest

from repro.bist.template import RandomLoad, TemplateArchitecture
from repro.dsp.gatelevel import make_gatelevel_core
from repro.dsp.isa import Instruction, Opcode
from repro.faults.hierarchical import HierarchicalFaultSimulator
from repro.faults.seqsim import SeqFaultSimulator

#: Regions compared; others are either too small for rates to be stable
#: (truncater region: 2 flat faults) or differ in fault-model scope.
COMPARED = (
    "multiplier", "shifter", "addsub", "acca", "accb", "regfile",
    "muxa", "muxb", "muxg_shifter", "muxg_limiter", "limiter",
    "mux7", "macreg", "buffer",
)
TOLERANCE = 0.12


def stream():
    program = [
        RandomLoad(0), RandomLoad(1),
        Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
        Instruction(Opcode.OUT, regb=2),
        Instruction(Opcode.MACB_SUB, rega=0, regb=1, dest=3),
        Instruction(Opcode.OUT, regb=3),
        Instruction(Opcode.SHIFTA, rega=0, dest=4),
        Instruction(Opcode.OUT, regb=4),
        Instruction(Opcode.OUTA),
        Instruction(Opcode.OUTB),
    ]
    return TemplateArchitecture(program).expand(8)


@pytest.fixture(scope="module")
def both_runs():
    words = stream()
    flat = make_gatelevel_core()
    flat_result = SeqFaultSimulator(flat).run_sequence({"instr": words})
    flat_by_region = defaultdict(lambda: [0, 0])
    for fault, cycle in flat_result.first_detect_cycle.items():
        region = flat.net_regions.get(fault.net)
        if region is None:
            continue
        flat_by_region[region][1] += 1
        flat_by_region[region][0] += cycle is not None
    hier = HierarchicalFaultSimulator().run(words)
    return flat_by_region, hier.coverage_report().by_component


def test_per_component_coverage_agreement(both_runs):
    flat_by_region, hier_by_component = both_runs
    disagreements = []
    for component in COMPARED:
        flat_detected, flat_total = flat_by_region[component]
        if flat_total < 20:
            continue
        hier_detected, hier_total = hier_by_component[component]
        flat_rate = flat_detected / flat_total
        hier_rate = hier_detected / hier_total
        if abs(flat_rate - hier_rate) > TOLERANCE:
            disagreements.append(
                f"{component}: flat {flat_rate:.1%} vs "
                f"hierarchical {hier_rate:.1%}"
            )
    assert not disagreements, disagreements


def test_major_components_closely_matched(both_runs):
    """The big structures must agree tightly, not just within tolerance."""
    flat_by_region, hier_by_component = both_runs
    for component in ("multiplier", "shifter", "regfile"):
        flat_detected, flat_total = flat_by_region[component]
        hier_detected, hier_total = hier_by_component[component]
        assert abs(flat_detected / flat_total
                   - hier_detected / hier_total) < 0.05, component


def test_flat_universe_carries_region_labels():
    flat = make_gatelevel_core()
    labelled = set(flat.net_regions.values())
    for component in COMPARED:
        assert component in labelled, component
