"""Gate-level core: structure and cycle-accurate equivalence with the ISS."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bist.template import RandomLoad, TemplateArchitecture
from repro.dsp.core import DspCore
from repro.dsp.gatelevel import make_gatelevel_core
from repro.dsp.isa import Instruction, Opcode, encode
from repro.logic.sequential import SequentialSimulator


@pytest.fixture(scope="module")
def flat_core():
    return make_gatelevel_core()


def test_structure(flat_core):
    stats = flat_core.stats()
    assert stats.n_inputs == 17          # the instruction word
    assert stats.n_dffs > 250            # regfile + pipeline + accumulators
    assert 2000 <= stats.n_gates <= 10000
    assert "out" in flat_core.buses
    assert "out_valid" in flat_core.buses
    assert "acc_a" in flat_core.buses and len(flat_core.buses["acc_a"]) == 18


def run_both(flat_core, words):
    """Run behavioural and gate-level cores; returns (beh, gate) port lists."""
    behav = DspCore()
    gate = SequentialSimulator(flat_core)
    beh_ports, gate_ports = [], []
    for word in words:
        r = behav.step(word)
        g = gate.step_bus({"instr": word})
        beh_ports.append((r.out_valid, r.port))
        gate_ports.append((bool(g["out_valid"]), g["out"]))
    return beh_ports, gate_ports


def test_equivalence_on_mac_program(flat_core):
    program = [
        Instruction(Opcode.LDI, imm=0x31, dest=1),
        Instruction(Opcode.LDI, imm=0x12, dest=2),
        Instruction(Opcode.MPYA, rega=1, regb=2, dest=3),
        Instruction(Opcode.OUT, regb=3),
        Instruction(Opcode.MACA_SUB, rega=1, regb=2, dest=4),
        Instruction(Opcode.MACTB_ADD, rega=1, regb=2, dest=5),
        Instruction(Opcode.SHIFTA, rega=2, dest=6),
        Instruction(Opcode.OUT, regb=6),
        Instruction(Opcode.OUTA),
        Instruction(Opcode.OUTB),
        Instruction(Opcode.MOV, regb=3, dest=9),
        Instruction(Opcode.OUT, regb=9),
    ]
    words = [encode(i) for i in program] + [encode(Instruction(Opcode.NOP))] * 4
    beh, gate = run_both(flat_core, words)
    assert beh == gate


def test_equivalence_on_template_stream(flat_core):
    program = [
        RandomLoad(0), RandomLoad(1),
        Instruction(Opcode.MPYSHIFTMACB, rega=0, regb=1, dest=2),
        Instruction(Opcode.OUT, regb=2),
        Instruction(Opcode.MACA_ADD, rega=0, regb=1, dest=3),
        Instruction(Opcode.OUT, regb=3),
    ]
    words = TemplateArchitecture(program).expand(8)
    beh, gate = run_both(flat_core, words)
    assert beh == gate


@settings(max_examples=6, deadline=None)
@given(st.lists(st.integers(0, 2**17 - 1), min_size=4, max_size=24))
def test_equivalence_on_random_words(flat_core, words):
    """Arbitrary 17-bit words (incl. unused opcodes) behave identically."""
    beh, gate = run_both(flat_core, words)
    assert beh == gate


def test_gate_core_accumulator_state_matches(flat_core):
    words = [encode(i) for i in [
        Instruction(Opcode.LDI, imm=0x20, dest=1),
        Instruction(Opcode.LDI, imm=0x20, dest=2),
        Instruction(Opcode.MPYA, rega=1, regb=2, dest=3),
        Instruction(Opcode.MACB_ADD, rega=1, regb=2, dest=4),
    ]] + [encode(Instruction(Opcode.NOP))] * 4
    behav = DspCore()
    gate = SequentialSimulator(flat_core)
    for word in words:
        behav.step(word)
        gate.step_bus({"instr": word})
    acc_a_gate = 0
    for i, net in enumerate(flat_core.buses["acc_a"]):
        acc_a_gate |= gate.state[net] << i
    assert acc_a_gate == behav.state.acc_a
