"""Tests for the netlist-domain lint rules (NET000..NET011)."""

import warnings

import pytest

from repro.lint.findings import Severity
from repro.lint.netlist_rules import (
    LintWarning,
    _reset_screened_for_tests,
    lint_netlist,
    warn_on_netlist,
)
from repro.logic.gates import GateType
from repro.logic.netlist import Gate, Netlist


def rules_fired(report):
    return {f.rule for f in report}


def clean_netlist():
    """sum = a XOR b, carry = a AND b, one registered copy of sum."""
    nl = Netlist("clean")
    a = nl.add_net("a")
    b = nl.add_net("b")
    s = nl.add_net("sum")
    c = nl.add_net("carry")
    q = nl.add_net("q")
    nl.add_input(a)
    nl.add_input(b)
    nl.add_gate(GateType.XOR, s, (a, b))
    nl.add_gate(GateType.AND, c, (a, b))
    nl.add_dff(q, s, init=0)
    nl.add_output(s)
    nl.add_output(c)
    nl.add_output(q)
    return nl


def append_gate(nl, kind, output, inputs):
    """Append a gate bypassing add_gate's guard (a buggy generator)."""
    if output not in nl.driver:
        nl.driver[output] = len(nl.gates)
    nl.gates.append(Gate(kind=kind, output=output, inputs=tuple(inputs)))
    nl._topo_cache = None


def test_clean_netlist_has_no_findings():
    assert lint_netlist(clean_netlist()).findings == []


def test_net001_multi_driven_net():
    nl = clean_netlist()
    append_gate(nl, GateType.OR, nl.net_id("sum"),
                (nl.net_id("a"), nl.net_id("b")))
    report = lint_netlist(nl)
    fired = rules_fired(report)
    assert "NET001" in fired
    assert "NET000" in fired  # validate() now counts drivers too
    finding = next(f for f in report if f.rule == "NET001")
    assert "'sum'" in finding.location
    assert "2 sources" in finding.message
    assert report.exit_code() == 1


def test_net002_dead_gate_and_dff():
    nl = clean_netlist()
    dead = nl.add_net("dead")
    nl.add_gate(GateType.NOT, dead, (nl.net_id("a"),))
    dq = nl.add_net("dead_q")
    nl.add_dff(dq, nl.net_id("carry"))
    report = lint_netlist(nl)
    locations = {f.location for f in report if f.rule == "NET002"}
    assert any("'dead'" in loc for loc in locations)
    assert any("'dead_q'" in loc for loc in locations)
    # Dead logic is a warning, not an error: campaigns still run.
    assert report.exit_code() == 0


def test_net002_crosses_dff_boundaries():
    """A gate feeding an observed DFF is useful, not dead."""
    nl = Netlist("seq")
    a = nl.add_net("a")
    d = nl.add_net("d")
    q = nl.add_net("q")
    nl.add_input(a)
    nl.add_gate(GateType.NOT, d, (a,))
    nl.add_dff(q, d)
    nl.add_output(q)
    assert "NET002" not in rules_fired(lint_netlist(nl))


def test_net003_constant_net():
    nl = clean_netlist()
    zero = nl.add_net("zero")
    stuck = nl.add_net("stuck")
    o = nl.add_net("o")
    nl.add_gate(GateType.CONST0, zero, ())
    nl.add_gate(GateType.AND, stuck, (nl.net_id("a"), zero))
    nl.add_gate(GateType.OR, o, (stuck, nl.net_id("b")))
    nl.add_output(o)
    report = lint_netlist(nl)
    net003 = [f for f in report if f.rule == "NET003"]
    assert any("'stuck'" in f.location for f in net003)
    # The CONST0 gate itself is a deliberate tie-off, never flagged.
    assert not any("'zero'" in f.location for f in net003)


def test_net004_uninitialised_dff_reaching_output():
    nl = Netlist("powerup")
    d = nl.add_net("d")
    q = nl.add_net("q")
    o = nl.add_net("o")
    nl.add_input(d)
    nl.add_dff(q, d, init=None)
    nl.add_gate(GateType.BUF, o, (q,))
    nl.add_output(o)
    report = lint_netlist(nl)
    net004 = [f for f in report if f.rule == "NET004"]
    assert len(net004) == 1
    assert "'o'" in net004[0].location


def test_net004_quiet_when_dffs_are_reset():
    assert "NET004" not in rules_fired(lint_netlist(clean_netlist()))


def test_net005_floating_bus_bit():
    nl = clean_netlist()
    floating = nl.add_net("f0")
    nl.add_bus("fbus", [nl.net_id("sum"), floating])
    report = lint_netlist(nl)
    net005 = [f for f in report if f.rule == "NET005"]
    assert len(net005) == 1
    assert "'fbus'" in net005[0].location
    assert "f0" in net005[0].message


def test_net006_fanout_outlier():
    nl = Netlist("fan")
    a = nl.add_net("a")
    nl.add_input(a)
    # One net driving 50 gates against a backdrop of fanout-1 chains.
    for i in range(50):
        o = nl.add_net(f"o{i}")
        nl.add_gate(GateType.BUF, o, (a,))
        nl.add_output(o)
    prev = nl.net_id("o0")
    for i in range(60):
        n = nl.add_net(f"c{i}")
        nl.add_gate(GateType.NOT, n, (prev,))
        prev = n
    nl.add_output(prev)
    report = lint_netlist(nl)
    net006 = [f for f in report if f.rule == "NET006"]
    assert any("'a'" in f.location for f in net006)


def test_net007_depth_outlier():
    nl = Netlist("deep")
    a = nl.add_net("a")
    nl.add_input(a)
    prev = a
    for i in range(30):
        n = nl.add_net(f"d{i}")
        nl.add_gate(GateType.NOT, n, (prev,))
        prev = n
    nl.add_output(prev)
    for i in range(20):
        o = nl.add_net(f"s{i}")
        nl.add_gate(GateType.BUF, o, (a,))
        nl.add_output(o)
    report = lint_netlist(nl)
    net007 = [f for f in report if f.rule == "NET007"]
    assert any("'d29'" in f.location for f in net007)


def test_min_severity_filters_warnings():
    nl = clean_netlist()
    dead = nl.add_net("dead")
    nl.add_gate(GateType.NOT, dead, (nl.net_id("a"),))
    assert "NET002" in rules_fired(lint_netlist(nl))
    assert rules_fired(lint_netlist(nl, Severity.ERROR)) == set()


# ----------------------------------------------------------------------
# NET008..NET011 — structural testability rules
# ----------------------------------------------------------------------
def make_cliff_netlist():
    """A backdrop of shallow logic plus one deep AND chain: the chain's
    tail is a controllability/observability outlier past the percentile
    cliff (needs >= TESTABILITY_MIN_NETS nets to arm the rule)."""
    nl = Netlist("cliff")
    ins = []
    for i in range(40):
        a = nl.add_net(f"a{i}")
        nl.add_input(a)
        ins.append(a)
        o = nl.add_net(f"e{i}")
        nl.add_gate(GateType.NOT, o, (a,))
        nl.add_output(o)
    prev = ins[0]
    for i in range(40):
        n = nl.add_net(f"h{i}")
        nl.add_gate(GateType.AND, n, (prev, ins[i % 40]))
        prev = n
    nl.add_output(prev)
    return nl


def test_net008_net009_flag_testability_cliff():
    report = lint_netlist(make_cliff_netlist())
    fired = rules_fired(report)
    assert "NET008" in fired
    assert "NET009" in fired
    hard = [f for f in report if f.rule == "NET008"]
    # The chain's tail is the hardest-to-control net.
    assert any("'h39'" in f.location for f in hard)
    # INFO severity: never fails a lint run on its own.
    assert all(f.severity == Severity.INFO
               for f in report if f.rule in ("NET008", "NET009"))


def test_net008_skips_small_netlists():
    """Percentile cliffs are meaningless on a handful of nets."""
    fired = rules_fired(lint_netlist(clean_netlist()))
    assert "NET008" not in fired
    assert "NET009" not in fired


def test_net010_flags_random_resistant_cone():
    nl = Netlist("wide")
    ins = []
    for i in range(32):
        a = nl.add_net(f"x{i}")
        nl.add_input(a)
        ins.append(a)
    y = nl.add_net("y")
    nl.add_gate(GateType.AND, y, tuple(ins))
    nl.add_output(y)
    report = lint_netlist(nl)
    net010 = [f for f in report if f.rule == "NET010"]
    # y sa0 needs all 32 inputs high: p = 2^-32 < the 1e-8 floor.
    assert any("'y' sa0" in f.location for f in net010)
    assert all(f.severity == Severity.WARNING for f in net010)
    assert report.exit_code() == 0
    assert report.exit_code(strict=True) == 1


def test_net011_flags_statically_untestable():
    nl = Netlist("tied")
    a = nl.add_net("a")
    b = nl.add_net("b")
    tie = nl.add_net("tie")
    gated = nl.add_net("gated")
    y = nl.add_net("y")
    nl.add_input(a)
    nl.add_input(b)
    nl.add_gate(GateType.CONST0, tie, ())
    nl.add_gate(GateType.AND, gated, (a, tie))
    nl.add_gate(GateType.OR, y, (gated, b))
    nl.add_output(y)
    report = lint_netlist(nl)
    net011 = [f for f in report if f.rule == "NET011"]
    assert any("'gated' sa0" in f.location for f in net011)
    # Statically untestable sites are NET011's, not NET010's.
    net010_locs = {f.location for f in report if f.rule == "NET010"}
    assert not any("'gated' sa0" in loc for loc in net011
                   if loc in net010_locs)


def test_detect_floor_matches_analysis_default():
    """The lint floor and the `repro testability` CLI default agree."""
    from repro.analysis.testability import DEFAULT_DETECT_FLOOR
    from repro.lint.netlist_rules import DETECT_PROB_FLOOR
    assert DETECT_PROB_FLOOR == DEFAULT_DETECT_FLOOR


def test_testability_rules_quiet_on_clean_logic():
    fired = rules_fired(lint_netlist(clean_netlist()))
    assert "NET010" not in fired
    assert "NET011" not in fired


@pytest.mark.parametrize("artifact,expected_rule", [
    ("examples/lint/untestable_netlist.json", "NET011"),
    ("examples/lint/random_resistant_netlist.json", "NET010"),
])
def test_seeded_defect_artifacts_fire(artifact, expected_rule):
    from pathlib import Path

    from repro.lint.artifacts import load_artifact
    path = Path(__file__).parent.parent / artifact
    report = lint_netlist(load_artifact(str(path)))
    assert expected_rule in rules_fired(report)
    assert report.exit_code(strict=True) == 1


# ----------------------------------------------------------------------
# warn_on_netlist — the campaign construction hook
# ----------------------------------------------------------------------
def broken_netlist():
    nl = clean_netlist()
    append_gate(nl, GateType.OR, nl.net_id("sum"),
                (nl.net_id("a"), nl.net_id("b")))
    return nl


def test_warn_on_netlist_warns_once_per_instance():
    _reset_screened_for_tests()
    nl = broken_netlist()
    with pytest.warns(LintWarning, match="NET001"):
        report = warn_on_netlist(nl, context="unit test")
    assert report is not None and report.errors
    # The second screening of the same instance is a no-op.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert warn_on_netlist(nl) is None


def test_warn_on_netlist_silent_on_clean_netlist():
    _reset_screened_for_tests()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        report = warn_on_netlist(clean_netlist())
    assert report is not None and not report.findings


def test_warn_on_netlist_disabled_by_env(monkeypatch):
    _reset_screened_for_tests()
    monkeypatch.setenv("REPRO_LINT", "0")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert warn_on_netlist(broken_netlist()) is None


def test_fault_universe_construction_is_screened():
    """DspFaultUniverse screens its component netlists (warn-only)."""
    from repro.faults.hierarchical import DspFaultUniverse
    _reset_screened_for_tests()
    with warnings.catch_warnings():
        warnings.simplefilter("error", LintWarning)
        DspFaultUniverse()  # clean paper-core netlists: no warnings
