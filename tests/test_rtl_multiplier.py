"""Tests for the signed array multiplier against the reference model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro._util import mask, to_signed
from repro.logic.simulator import CombSimulator
from repro.rtl.multiplier import make_multiplier, multiplier_reference


@pytest.fixture(scope="module")
def mult8():
    return CombSimulator(make_multiplier(8, 18))


def test_reference_model_signedness():
    assert to_signed(multiplier_reference(0xFF, 0x01), 18) == -1
    assert to_signed(multiplier_reference(0x80, 0x80), 18) == 128 * 128
    assert to_signed(multiplier_reference(0x80, 0x7F), 18) == -128 * 127
    assert multiplier_reference(0, 0xAB) == 0


def test_corner_products(mult8):
    corners = [0x00, 0x01, 0x7F, 0x80, 0xFF, 0x55, 0xAA]
    for a in corners:
        for b in corners:
            out = mult8.evaluate_word({"a": a, "b": b})
            assert out["p"] == multiplier_reference(a, b), (a, b)


@settings(max_examples=60)
@given(st.integers(0, 255), st.integers(0, 255))
def test_random_products(mult8, a, b):
    out = mult8.evaluate_word({"a": a, "b": b})
    assert out["p"] == multiplier_reference(a, b)


def test_pattern_parallel_products(mult8):
    a_words = [3, 250, 128, 127, 1, 0]
    b_words = [3, 250, 128, 128, 255, 17]
    result = mult8.run_bus(
        {"a": a_words, "b": b_words}, n_patterns=len(a_words)
    )
    expected = [multiplier_reference(a, b) for a, b in zip(a_words, b_words)]
    assert result["p"] == expected


def test_sign_extension_to_18_bits(mult8):
    out = mult8.evaluate_word({"a": 0xFF, "b": 0x01})  # -1 * 1 = -1
    assert out["p"] == mask(18)


def test_small_multiplier_exhaustive():
    sim = CombSimulator(make_multiplier(4, 8))
    for a in range(16):
        for b in range(16):
            out = sim.evaluate_word({"a": a, "b": b})
            assert out["p"] == multiplier_reference(a, b, n=4, out_width=8)


def test_bad_out_width_rejected():
    with pytest.raises(ValueError):
        make_multiplier(8, 15)


def test_fault_universe_size_is_industrial():
    """The 8x8 multiplier should have a gate count in the hundreds,
    giving a stuck-at fault universe of the same order as the paper's 2162."""
    stats = make_multiplier(8, 18).stats()
    assert 400 <= stats.n_gates <= 2000
