"""Tests for the JSONL checkpoint store."""

import json
import os

import pytest

from repro.runtime.checkpoint import (
    FORMAT_VERSION,
    HEADER_KIND,
    CheckpointStore,
)
from repro.runtime.errors import CheckpointCorruptError, ReproError


def make_store(tmp_path, records=()):
    store = CheckpointStore(str(tmp_path / "campaign.jsonl"))
    store.create({"kind": "test", "n": 3})
    for record in records:
        store.append(record)
    store.close()
    return store


def test_create_and_load_roundtrip(tmp_path):
    store = make_store(tmp_path, [
        {"unit": "a", "status": "ok", "value": 7},
        {"unit": "b", "status": "ok", "value": None},
    ])
    header, records = store.load()
    assert header["kind"] == HEADER_KIND
    assert header["version"] == FORMAT_VERSION
    assert header["fingerprint"] == {"kind": "test", "n": 3}
    assert set(records) == {"a", "b"}
    assert records["a"]["value"] == 7
    assert records["b"]["value"] is None


def test_create_is_atomic_no_tmp_left(tmp_path):
    store = make_store(tmp_path)
    assert os.path.exists(store.path)
    assert not os.path.exists(store.path + ".tmp")


def test_create_overwrites_previous_campaign(tmp_path):
    store = make_store(tmp_path, [{"unit": "a", "status": "ok"}])
    store.create({"fresh": True})
    header, records = store.load()
    assert header["fingerprint"] == {"fresh": True}
    assert records == {}


def test_truncated_final_line_raises(tmp_path):
    store = make_store(tmp_path, [{"unit": "a", "status": "ok"}])
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write('{"unit": "b", "sta')  # killed mid-write
    with pytest.raises(CheckpointCorruptError):
        store.load()


def test_truncated_final_line_repair(tmp_path):
    store = make_store(tmp_path, [{"unit": "a", "status": "ok"}])
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write('{"unit": "b", "sta')
    header, records = store.load(repair=True)
    assert set(records) == {"a"}
    # The bad tail was cut off on disk too: a plain load now succeeds.
    _, records = store.load()
    assert set(records) == {"a"}


def test_garbage_record_line_raises(tmp_path):
    store = make_store(tmp_path, [{"unit": "a", "status": "ok"}])
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
    with pytest.raises(CheckpointCorruptError):
        store.load()


def test_record_without_unit_key_raises(tmp_path):
    store = make_store(tmp_path)
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps({"status": "ok"}) + "\n")
    with pytest.raises(CheckpointCorruptError):
        store.load()


def test_missing_header_raises(tmp_path):
    path = tmp_path / "raw.jsonl"
    path.write_text(json.dumps({"unit": "a", "status": "ok"}) + "\n")
    with pytest.raises(CheckpointCorruptError):
        CheckpointStore(str(path)).load()


def test_empty_file_raises(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(CheckpointCorruptError):
        CheckpointStore(str(path)).load()


def test_version_mismatch_raises(tmp_path):
    path = tmp_path / "old.jsonl"
    path.write_text(json.dumps({
        "kind": HEADER_KIND, "version": FORMAT_VERSION + 1,
        "fingerprint": {},
    }) + "\n")
    with pytest.raises(CheckpointCorruptError):
        CheckpointStore(str(path)).load()


def test_missing_file_raises(tmp_path):
    with pytest.raises(CheckpointCorruptError):
        CheckpointStore(str(tmp_path / "nope.jsonl")).load()


def test_corrupt_error_is_repro_error(tmp_path):
    """The hierarchy lets callers catch every repo failure in one clause."""
    with pytest.raises(ReproError):
        CheckpointStore(str(tmp_path / "nope.jsonl")).load()


def test_context_manager_closes_handle(tmp_path):
    store = make_store(tmp_path)
    with store:
        store.append({"unit": "a", "status": "ok"})
    assert store._handle is None
    _, records = store.load()
    assert set(records) == {"a"}
