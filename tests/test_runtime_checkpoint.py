"""Tests for the JSONL checkpoint store."""

import json
import os
import time

import pytest

from repro.runtime.checkpoint import (
    FORMAT_VERSION,
    HEADER_KIND,
    CheckpointStore,
)
from repro.runtime.errors import CheckpointCorruptError, ReproError


def make_store(tmp_path, records=()):
    store = CheckpointStore(str(tmp_path / "campaign.jsonl"))
    store.create({"kind": "test", "n": 3})
    for record in records:
        store.append(record)
    store.close()
    return store


def test_create_and_load_roundtrip(tmp_path):
    store = make_store(tmp_path, [
        {"unit": "a", "status": "ok", "value": 7},
        {"unit": "b", "status": "ok", "value": None},
    ])
    header, records = store.load()
    assert header["kind"] == HEADER_KIND
    assert header["version"] == FORMAT_VERSION
    assert header["fingerprint"] == {"kind": "test", "n": 3}
    assert set(records) == {"a", "b"}
    assert records["a"]["value"] == 7
    assert records["b"]["value"] is None


def test_create_is_atomic_no_tmp_left(tmp_path):
    store = make_store(tmp_path)
    assert os.path.exists(store.path)
    assert not os.path.exists(store.path + ".tmp")


def test_create_overwrites_previous_campaign(tmp_path):
    store = make_store(tmp_path, [{"unit": "a", "status": "ok"}])
    store.create({"fresh": True})
    header, records = store.load()
    assert header["fingerprint"] == {"fresh": True}
    assert records == {}


def test_truncated_final_line_raises(tmp_path):
    store = make_store(tmp_path, [{"unit": "a", "status": "ok"}])
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write('{"unit": "b", "sta')  # killed mid-write
    with pytest.raises(CheckpointCorruptError):
        store.load()


def test_truncated_final_line_repair(tmp_path):
    store = make_store(tmp_path, [{"unit": "a", "status": "ok"}])
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write('{"unit": "b", "sta')
    header, records = store.load(repair=True)
    assert set(records) == {"a"}
    # The bad tail was cut off on disk too: a plain load now succeeds.
    _, records = store.load()
    assert set(records) == {"a"}


def test_garbage_record_line_raises(tmp_path):
    store = make_store(tmp_path, [{"unit": "a", "status": "ok"}])
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
    with pytest.raises(CheckpointCorruptError):
        store.load()


def test_record_without_unit_key_raises(tmp_path):
    store = make_store(tmp_path)
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps({"status": "ok"}) + "\n")
    with pytest.raises(CheckpointCorruptError):
        store.load()


def test_missing_header_raises(tmp_path):
    path = tmp_path / "raw.jsonl"
    path.write_text(json.dumps({"unit": "a", "status": "ok"}) + "\n")
    with pytest.raises(CheckpointCorruptError):
        CheckpointStore(str(path)).load()


def test_empty_file_raises(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(CheckpointCorruptError):
        CheckpointStore(str(path)).load()


def test_version_mismatch_raises(tmp_path):
    path = tmp_path / "old.jsonl"
    path.write_text(json.dumps({
        "kind": HEADER_KIND, "version": FORMAT_VERSION + 1,
        "fingerprint": {},
    }) + "\n")
    with pytest.raises(CheckpointCorruptError):
        CheckpointStore(str(path)).load()


def test_missing_file_raises(tmp_path):
    with pytest.raises(CheckpointCorruptError):
        CheckpointStore(str(tmp_path / "nope.jsonl")).load()


def test_corrupt_error_is_repro_error(tmp_path):
    """The hierarchy lets callers catch every repo failure in one clause."""
    with pytest.raises(ReproError):
        CheckpointStore(str(tmp_path / "nope.jsonl")).load()


# ----------------------------------------------------------------------
# Stale-tmp sweep (crash between write and os.replace)
# ----------------------------------------------------------------------
def _age_tmp(path: str, seconds: float = 120.0) -> None:
    """Back-date a ``.tmp`` past the sweep's grace window."""
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


def test_stale_tmp_swept_on_create(tmp_path):
    path = str(tmp_path / "campaign.jsonl")
    with open(path + ".tmp", "w") as handle:
        handle.write('{"kind": "half-written hea')
    _age_tmp(path + ".tmp")
    store = CheckpointStore(path)
    store.create({"n": 1})
    assert not os.path.exists(path + ".tmp")


def test_stale_tmp_swept_on_load(tmp_path):
    store = make_store(tmp_path, [{"unit": "a", "status": "ok"}])
    with open(store.path + ".tmp", "w") as handle:
        handle.write('{"kind": "half-written hea')
    _age_tmp(store.path + ".tmp")
    store.load()
    assert not os.path.exists(store.path + ".tmp")


def test_fresh_tmp_left_alone(tmp_path):
    """A young ``.tmp`` may belong to a live writer racing this process
    (another create() between its write and os.replace) — the sweep
    must not yank it out from under them."""
    store = make_store(tmp_path, [{"unit": "a", "status": "ok"}])
    with open(store.path + ".tmp", "w") as handle:
        handle.write('{"kind": "mid-flight create"')
    store.load()
    assert os.path.exists(store.path + ".tmp")


def test_tmp_vanishing_mid_sweep_is_ignored(tmp_path):
    """Two sweepers racing: losing the os.remove race is not an error."""
    store = make_store(tmp_path, [{"unit": "a", "status": "ok"}])
    # No .tmp at all exercises the same ENOENT path as losing the race.
    store.load()
    assert not os.path.exists(store.path + ".tmp")


# ----------------------------------------------------------------------
# Integrity chain
# ----------------------------------------------------------------------
def test_silent_value_edit_breaks_chain(tmp_path):
    """JSON-valid tampering (undetectable by parsing alone) is caught."""
    store = make_store(tmp_path, [
        {"unit": "a", "status": "ok", "value": 7},
        {"unit": "b", "status": "ok", "value": 8},
    ])
    with open(store.path, "r", encoding="utf-8") as handle:
        text = handle.read()
    with open(store.path, "w", encoding="utf-8") as handle:
        handle.write(text.replace('"value": 7', '"value": 9'))
    with pytest.raises(CheckpointCorruptError, match="chain"):
        store.load()
    # Repair discards from the edited record on — it is untrusted, and
    # so is everything chained after it.
    _, records = store.load(repair=True)
    assert set(records) == set()


def test_duplicated_trailing_record_breaks_chain(tmp_path):
    store = make_store(tmp_path, [{"unit": "a", "status": "ok"}])
    with open(store.path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().split("\n") if line]
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write(lines[-1] + "\n")
    with pytest.raises(CheckpointCorruptError, match="chain"):
        store.load()
    _, records = store.load(repair=True)
    assert set(records) == {"a"}


def test_invalid_utf8_flip_is_corruption_not_decode_error(tmp_path):
    store = make_store(tmp_path, [{"unit": "a", "status": "ok"}])
    with open(store.path, "rb") as handle:
        data = bytearray(handle.read())
    data[-5] |= 0x80  # no longer valid UTF-8
    with open(store.path, "wb") as handle:
        handle.write(data)
    with pytest.raises(CheckpointCorruptError):
        store.load()


def test_append_rechains_stale_shard_digest(tmp_path):
    """A record replayed from a worker shard carries the *shard's* chain
    digest; append must recompute it onto this file's tail."""
    store = make_store(tmp_path)
    store.append({"unit": "a", "status": "ok",
                  "chain": "deadbeefdeadbeef"})
    store.close()
    _, records = store.load()   # chain verifies
    assert records["a"]["chain"] != "deadbeefdeadbeef"


def test_header_tamper_detected(tmp_path):
    store = make_store(tmp_path)
    with open(store.path, "r", encoding="utf-8") as handle:
        text = handle.read()
    with open(store.path, "w", encoding="utf-8") as handle:
        handle.write(text.replace('"n": 3', '"n": 4'))
    with pytest.raises(CheckpointCorruptError, match="header"):
        store.load()


def test_context_manager_closes_handle(tmp_path):
    store = make_store(tmp_path)
    with store:
        store.append({"unit": "a", "status": "ok"})
    assert store._handle is None
    _, records = store.load()
    assert set(records) == {"a"}
