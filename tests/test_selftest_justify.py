"""Tests for operand justification (ATPG pattern delivery)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro._util import to_signed
from repro.atpg.podem import Podem
from repro.dsp.core import DspCore
from repro.faults.combsim import CombFaultSimulator
from repro.faults.model import collapse_faults
from repro.rtl.arith import make_addsub
from repro.selftest.justify import (
    factor_product,
    justify_accumulator,
    oneshot_detects,
    synthesize_addsub_oneshot,
)


def test_factor_product_basics():
    assert factor_product(0) == (0, 0)
    a, b = factor_product(1)
    assert to_signed(a, 8) * to_signed(b, 8) == 1
    a, b = factor_product(-128)
    assert to_signed(a, 8) * to_signed(b, 8) == -128
    a, b = factor_product(16384)  # (-128) * (-128)
    assert to_signed(a, 8) * to_signed(b, 8) == 16384


def test_factor_product_out_of_range():
    assert factor_product(20000) is None
    assert factor_product(-17000) is None


def test_factor_product_large_prime_unreachable():
    # 16381 is prime and > 127, so no signed-byte factorisation exists.
    assert factor_product(16381) is None


@settings(max_examples=120)
@given(st.integers(-16256, 16384))
def test_factor_product_correct_when_found(p):
    result = factor_product(p)
    if result is not None:
        a, b = result
        assert to_signed(a, 8) * to_signed(b, 8) == p


def test_justify_accumulator_exact():
    rng = random.Random(6)
    for _ in range(30):
        target = rng.randrange(1 << 18)
        sequence = justify_accumulator(target, acc="A")
        assert sequence is not None, hex(target)
        core = DspCore()
        core.run_program(sequence)
        assert core.state.acc_a == target, hex(target)


def test_justify_accumulator_b_side():
    sequence = justify_accumulator(0x2ABCD, acc="B")
    assert sequence is not None
    core = DspCore()
    core.run_program(sequence)
    assert core.state.acc_b == 0x2ABCD
    assert core.state.acc_a != 0x2ABCD


def test_justify_accumulator_validates():
    with pytest.raises(ValueError):
        justify_accumulator(0, acc="C")


def test_justify_sequences_are_short():
    """The paper's one-shot cost: ~21 lines per pattern; our prologue must
    stay within the same order."""
    rng = random.Random(9)
    lengths = []
    for _ in range(20):
        sequence = justify_accumulator(rng.randrange(1 << 18))
        assert sequence is not None
        lengths.append(len(sequence))
    assert max(lengths) <= 12


@pytest.fixture(scope="module")
def addsub_env():
    netlist = make_addsub(18)
    return netlist, CombFaultSimulator(netlist), Podem(netlist, 4000)


def test_synthesized_oneshot_detects(addsub_env):
    netlist, sim, engine = addsub_env
    made = 0
    for fault in collapse_faults(netlist).faults[::35]:
        result = engine.generate(fault)
        if not result.detected:
            continue
        sequence = synthesize_addsub_oneshot(
            fault, result.pattern_words(netlist), sim
        )
        if sequence is None:
            continue
        # synthesize verifies detection internally; double-check here.
        instructions = [line.item for line in sequence.lines]
        assert oneshot_detects(fault, instructions, sim)
        assert all(not line.in_loop for line in sequence.lines)
        made += 1
    assert made >= 3


def test_oneshot_rejects_unobservable(addsub_env):
    """A pattern whose error cannot reach the port yields None, not a
    bogus sequence."""
    netlist, sim, engine = addsub_env
    # Fabricate an impossible pattern: b-side value outside the product
    # range cannot be justified.
    from repro.faults.model import Fault
    fault = collapse_faults(netlist).faults[0]
    sequence = synthesize_addsub_oneshot(
        fault, {"a": 0, "b": 0x20000, "sub": 0}, sim
    )
    assert sequence is None
