"""Tests for the four-stage pipelined core: timing, hazards, output port."""

import pytest

from repro.dsp.core import CoreState, DspCore
from repro.dsp.isa import Instruction, Opcode, assemble_program, encode


def run(program_text, core=None, drain=True):
    core = core or DspCore()
    outs = core.run_program(assemble_program(program_text), drain=drain)
    return core, outs


def out_values(core, outs):
    return [v for v in outs if v]


def test_ldi_then_out():
    core, outs = run(
        """
        ld 0x42, R1
        nop
        nop
        nop
        out R1
        """
    )
    assert 0x42 in outs


def test_pipeline_latency_is_four_stages():
    """An OUT's port value appears when the instruction reaches WB."""
    core = DspCore()
    words = [encode(i) for i in assemble_program("ld 0x55, R1\nout R1\nnop\nnop\nnop\nnop")]
    results = core.run(words)
    # out R1 is fetched at cycle 1, reaches WB at cycle 1+3 = 4.
    assert results[4].out_valid
    assert results[4].out_value == 0x55


def test_forwarding_distance_1():
    """Back-to-back producer/consumer must see the fresh value."""
    _, outs = run(
        """
        ld 0x10, R1
        ld 0x10, R2
        MPYA R1, R2, R3
        out R3
        """
    )
    assert 0x10 in outs  # 1.0 * 1.0 = 1.0 = 0x10 in 4.4


def test_forwarding_distance_2():
    _, outs = run(
        """
        ld 0x23, R1
        nop
        out R1
        """
    )
    assert 0x23 in outs


def test_forwarding_distance_3_via_regfile():
    _, outs = run(
        """
        ld 0x77, R1
        nop
        nop
        out R1
        """
    )
    assert 0x77 in outs


def test_mov_copies_register():
    _, outs = run(
        """
        ld 0x3C, R2
        nop
        nop
        mov R2, R9
        nop
        nop
        out R9
        """
    )
    assert 0x3C in outs


def test_mac_program_accumulates():
    # 1.0*1.0 + 1.0*1.0 = 2.0 -> 0x20.
    _, outs = run(
        """
        ld 0x10, R1
        ld 0x10, R2
        MPYA R1, R2, R3
        MACA+ R1, R2, R4
        out R4
        """
    )
    assert 0x20 in outs


def test_acc_b_independent_of_acc_a():
    core, _ = run(
        """
        ld 0x10, R1
        ld 0x20, R2
        MPYA R1, R1, R3
        MPYB R2, R2, R4
        """
    )
    assert core.state.acc_a == 1 << 8   # 1.0
    assert core.state.acc_b == 4 << 8   # 4.0


def test_outa_outputs_accumulator():
    _, outs = run(
        """
        ld 0x10, R1
        ld 0x30, R2
        MPYA R1, R2, R3
        outa
        """
    )
    assert 0x30 in outs  # AccA = 3.0 through the limiter


def test_out_only_when_out_instruction_retires():
    core = DspCore()
    results = core.run([encode(Instruction(Opcode.NOP))] * 8)
    assert all(not r.out_valid for r in results)
    assert all(r.port == 0 for r in results)


def test_shift_program():
    # acc = 1.0; shift left by 2 -> 4.0.
    _, outs = run(
        """
        ld 0x10, R1
        ld 0x02, R5
        MPYA R1, R1, R2
        SHIFTA R5, R6
        out R6
        """
    )
    assert 0x40 in outs


def test_state_copy_is_deep():
    core, _ = run("ld 0x11, R1")
    snapshot = core.state.copy()
    core.step(encode(Instruction(Opcode.LDI, imm=0x99, dest=2)))
    assert snapshot.regs[2] != 0x99 or core.state.regs[2] == snapshot.regs[2]
    snapshot.regs[0] = 123
    assert core.state.regs[0] != 123


def test_differential_injection_changes_output():
    """Forcing a component output mid-program must corrupt the out stream."""
    program = assemble_program(
        """
        ld 0x10, R1
        ld 0x10, R2
        MPYA R1, R2, R3
        out R3
        """
    )
    words = [encode(i) for i in program] + [encode(Instruction(Opcode.NOP))] * 4
    clean = DspCore().run(words)
    # Cycle 2 fetches MPYA; it is in EX at cycle 4.
    poked = DspCore().run(words, overrides_by_cycle={4: {"multiplier": 0}})
    assert [r.port for r in clean] != [r.port for r in poked]


def test_stuck_bit_on_register_file():
    stuck = {("reg", 1): (0xFF & ~0x01, 0x00)}  # R1 bit0 stuck at 0
    core = DspCore(stuck_bits=stuck)
    outs = core.run_program(assemble_program("ld 0x11, R1\nnop\nnop\nnop\nout R1"))
    assert 0x10 in outs
    assert 0x11 not in outs


def test_stuck_bit_on_accumulator():
    stuck = {("acc_a",): ((1 << 18) - 1, 1 << 8)}  # bit8 stuck at 1
    core = DspCore(stuck_bits=stuck)
    core.run_program(assemble_program("ld 0x00, R1\nMPYA R1, R1, R2"))
    assert core.state.acc_a & (1 << 8)


def test_stuck_bit_unknown_target_rejected():
    with pytest.raises(ValueError):
        DspCore(stuck_bits={("bogus",): (0, 0)})


def test_trace_includes_pipeline_components():
    core = DspCore()
    words = [encode(i) for i in assemble_program("ld 0x10, R1\nMPYA R1, R1, R2")]
    traces = []
    for word in words + [encode(Instruction(Opcode.NOP))] * 4:
        trace = {}
        core.step(word, trace=trace)
        traces.append(trace)
    all_names = set().union(*traces)
    for name in ("decoder", "macreg", "buffer", "mux7", "multiplier",
                 "regread_a", "regread_b"):
        assert name in all_names, name


def test_temp_register_traced_on_writeback():
    core = DspCore()
    words = [encode(i) for i in assemble_program("ld 0x10, R1\nnop\nnop\nnop\nnop")]
    seen_temp = False
    for word in words:
        trace = {}
        core.step(word, trace=trace)
        seen_temp |= "temp" in trace
    assert seen_temp
    assert core.state.temp == 0x10
