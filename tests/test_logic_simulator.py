"""Tests for combinational and sequential simulation, including forcing."""

from hypothesis import given, strategies as st

from repro.logic.builder import NetlistBuilder
from repro.logic.sequential import SequentialSimulator
from repro.logic.simulator import (
    CombSimulator,
    pack_bus_patterns,
    pack_patterns,
    unpack_output,
)


def xor_chain():
    b = NetlistBuilder("xorchain")
    a = b.input("a")
    c = b.input("c")
    d = b.input("d")
    x1 = b.xor(a, c)
    x2 = b.xor(x1, d)
    b.output(x2)
    return b.finish(), x2


def test_comb_single_pattern():
    nl, out = xor_chain()
    sim = CombSimulator(nl)
    ids = nl.inputs
    values = sim.run({ids[0]: 1, ids[1]: 1, ids[2]: 0})
    assert values[out] == 0
    values = sim.run({ids[0]: 1, ids[1]: 0, ids[2]: 0})
    assert values[out] == 1


def test_comb_pattern_parallel():
    nl, out = xor_chain()
    sim = CombSimulator(nl)
    a, c, d = nl.inputs
    # 4 patterns: a=0011, c=0101, d=0000 -> out = a^c^d = 0110
    values = sim.run({a: 0b0011, c: 0b0101, d: 0}, n_patterns=4)
    assert values[out] == 0b0110


def test_forced_net_overrides_gate():
    nl, out = xor_chain()
    sim = CombSimulator(nl)
    a, c, d = nl.inputs
    x1 = out - 1  # net created right before the output in xor_chain
    baseline = sim.run({a: 1, c: 0, d: 0})
    forced = sim.run({a: 1, c: 0, d: 0}, forced={x1: 0})
    assert baseline[out] == 1
    assert forced[out] == 0


def test_forced_primary_input():
    nl, out = xor_chain()
    sim = CombSimulator(nl)
    a, c, d = nl.inputs
    values = sim.run({a: 0, c: 0, d: 0}, forced={a: 1})
    assert values[out] == 1


def test_run_bus_and_word_eval():
    b = NetlistBuilder("adder2")
    xs = b.input_bus("x", 2)
    ys = b.input_bus("y", 2)
    s0 = b.xor(xs[0], ys[0])
    carry = b.and_(xs[0], ys[0])
    s1 = b.xor(b.xor(xs[1], ys[1]), carry)
    b.output_bus("s", [s0, s1])
    nl = b.finish()
    sim = CombSimulator(nl)
    result = sim.evaluate_word({"x": 0b01, "y": 0b01})
    assert result["s"] == 0b10
    multi = sim.run_bus({"x": [0, 1, 2, 3], "y": [3, 1, 1, 0]}, n_patterns=4)
    assert multi["s"] == [(x + y) & 3 for x, y in [(0, 3), (1, 1), (2, 1), (3, 0)]]


@given(st.lists(st.integers(0, 255), min_size=1, max_size=20))
def test_pack_unpack_roundtrip(words):
    packed = pack_bus_patterns(8, words)
    for k, word in enumerate(words):
        assert unpack_output(packed, k) == word


def test_pack_patterns_single_bit():
    assert pack_patterns([1, 0, 1, 1], 0) == 0b1101


def test_pack_patterns_empty_pattern_list():
    assert pack_patterns([], 0) == 0
    assert pack_bus_patterns(4, []) == [0, 0, 0, 0]


def test_pack_unpack_one_bit_bus():
    """Width-1 buses pack into a single per-net integer."""
    words = [1, 0, 0, 1, 1]
    packed = pack_bus_patterns(1, words)
    assert packed == [0b11001]
    for k, word in enumerate(words):
        assert unpack_output(packed, k) == word


def test_pack_unpack_block_wider_than_64_patterns():
    """Packed values are arbitrary-precision: blocks beyond the 64-bit
    machine-word boundary round-trip exactly."""
    n_patterns = 100
    words = [(k * 37) & 0xFF for k in range(n_patterns)]
    packed = pack_bus_patterns(8, words)
    assert max(packed).bit_length() <= n_patterns
    assert any(p >> 64 for p in packed)   # the block really crosses 64 bits
    for k, word in enumerate(words):
        assert unpack_output(packed, k) == word


def test_pack_patterns_high_bit_index():
    words = [0x8000, 0x0000, 0x8000]
    assert pack_patterns(words, 15) == 0b101
    assert pack_patterns(words, 0) == 0


def counter2():
    """2-bit counter with enable input."""
    b = NetlistBuilder("counter2")
    en = b.input("en")
    d0 = b.net("d0")
    d1 = b.net("d1")
    q0 = b.dff(d0, name="q0")
    q1 = b.dff(d1, name="q1")
    from repro.logic.gates import GateType
    nl = b.netlist
    nl.add_gate(GateType.XOR, d0, (q0, en))
    carry = b.and_(q0, en)
    nl.add_gate(GateType.XOR, d1, (q1, carry))
    b.output(q0)
    b.output(q1)
    nl.add_bus("count", [q0, q1])
    return b.finish()


def test_sequential_counter():
    sim = SequentialSimulator(counter2())
    seen = []
    for _ in range(5):
        values = sim.step_bus({"en": 1})
        seen.append(values["count"])
    assert seen == [0, 1, 2, 3, 0]


def test_sequential_enable_holds():
    sim = SequentialSimulator(counter2())
    sim.step_bus({"en": 1})
    sim.step_bus({"en": 1})
    held = sim.step_bus({"en": 0})
    after = sim.step_bus({"en": 0})
    assert held["count"] == 2
    assert after["count"] == 2


def test_sequential_reset():
    sim = SequentialSimulator(counter2())
    for _ in range(3):
        sim.step_bus({"en": 1})
    sim.reset()
    assert sim.step_bus({"en": 0})["count"] == 0


def test_sequential_forced_state_stays_stuck():
    nl = counter2()
    sim = SequentialSimulator(nl)
    q0 = nl.net_id("q0")
    # Force q0 stuck-at-1: counter can never produce an even count.
    counts = [sim.step_bus({"en": 1}, forced={q0: 1})["count"] for _ in range(4)]
    assert all(c & 1 for c in counts)


def test_run_sequence():
    sim = SequentialSimulator(counter2())
    outs = sim.run_sequence({"en": [1, 1, 0, 1]}, output_bus="count")
    assert outs == [0, 1, 2, 2]
