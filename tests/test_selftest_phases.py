"""Tests for Phase 1 (greedy cover) and Phase 2 (sequences) on synthetic
metrics tables, mirroring the paper's worked examples."""

import pytest

from repro.dsp.isa import Opcode
from repro.metrics.controllability import InstructionVariant
from repro.metrics.table import MetricsCell, MetricsTable
from repro.selftest.phase1 import run_phase1
from repro.selftest.phase2 import unreachable_columns


def v(op, state="0"):
    return InstructionVariant(op, state)


def make_table(rows, columns, cells):
    """cells: {(row_label, column): (c, o)}"""
    table = MetricsTable(rows=rows, columns=columns)
    for (label, column), (c, o) in cells.items():
        row = next(r for r in rows if r.label == label)
        table.set_cell(row, column, MetricsCell(c=c, o=o))
    return table


GOOD = (0.95, 0.9)
BAD = (0.2, 0.0)


def test_greedy_picks_widest_cover_first():
    rows = [v(Opcode.LDI), v(Opcode.MPYA), v(Opcode.MACA_ADD, "R")]
    columns = [("multiplier", 0), ("addsub", 0), ("shifter", 0)]
    cells = {
        ("MpyA", ("multiplier", 0)): GOOD,
        ("MacA+R", ("multiplier", 0)): GOOD,
        ("MacA+R", ("addsub", 0)): GOOD,
        ("MacA+R", ("shifter", 0)): GOOD,
    }
    result = run_phase1(make_table(rows, columns, cells))
    assert result.chosen == [v(Opcode.MACA_ADD, "R")]
    assert result.selections[0][1] == columns
    assert result.uncovered == []


def test_wrapper_columns_removed_first():
    rows = [v(Opcode.LDI), v(Opcode.MPYA)]
    columns = [("buffer", 0), ("multiplier", 0)]
    cells = {
        ("load", ("buffer", 0)): GOOD,
        ("MpyA", ("buffer", 0)): GOOD,
        ("MpyA", ("multiplier", 0)): GOOD,
    }
    result = run_phase1(make_table(rows, columns, cells))
    assert ("buffer", 0) in result.wrapper_covered
    # MpyA is then only credited with the multiplier.
    assert result.selections[0][1] == [("multiplier", 0)]


def test_uncoverable_columns_left_for_phase2():
    rows = [v(Opcode.MPYA)]
    columns = [("multiplier", 0), ("acca", 0)]
    cells = {
        ("MpyA", ("multiplier", 0)): GOOD,
        ("MpyA", ("acca", 0)): (0.95, 0.0),  # controllable, unobservable
    }
    result = run_phase1(make_table(rows, columns, cells))
    assert result.uncovered == [("acca", 0)]


def test_greedy_is_deterministic_on_ties():
    rows = [v(Opcode.MPYA), v(Opcode.MPYB)]
    columns = [("multiplier", 0)]
    cells = {
        ("MpyA", ("multiplier", 0)): GOOD,
        ("MpyB", ("multiplier", 0)): GOOD,
    }
    result = run_phase1(make_table(rows, columns, cells))
    assert result.chosen == [v(Opcode.MPYA)]  # first row wins ties


def test_phase1_summary_readable():
    rows = [v(Opcode.MPYA)]
    columns = [("multiplier", 0)]
    cells = {("MpyA", ("multiplier", 0)): GOOD}
    summary = run_phase1(make_table(rows, columns, cells)).summary()
    assert "MpyA" in summary and "multiplier:0" in summary


def test_unreachable_columns_detected():
    """Shifter modes 10/11 have no cells in any row -> discardable
    (the paper's Phase 2 observation b)."""
    rows = [v(Opcode.MPYA), v(Opcode.SHIFTA, "R")]
    columns = [("shifter", 0), ("shifter", 1), ("shifter", 2),
               ("shifter", 3)]
    cells = {
        ("MpyA", ("shifter", 0)): BAD,
        ("ShiftAR", ("shifter", 1)): GOOD,
    }
    table = make_table(rows, columns, cells)
    assert unreachable_columns(table) == [("shifter", 2), ("shifter", 3)]


def test_lowered_thresholds_change_coverage():
    rows = [v(Opcode.MPYA)]
    columns = [("multiplier", 0)]
    cells = {("MpyA", ("multiplier", 0)): (0.65, 0.45)}
    table = make_table(rows, columns, cells)
    strict = run_phase1(table)
    assert strict.uncovered == columns
    relaxed = run_phase1(table.with_thresholds(0.6, 0.4))
    assert relaxed.uncovered == []
