"""Tests for the stuck-at fault universe and equivalence collapsing."""

from repro.faults.model import Fault, collapse_faults, full_fault_list
from repro.logic.builder import NetlistBuilder
from repro.rtl.arith import make_addsub
from repro.rtl.multiplier import make_multiplier


def inverter_chain(n):
    b = NetlistBuilder(f"invchain{n}")
    net = b.input("a")
    for _ in range(n):
        net = b.not_(net)
    b.output(net)
    return b.finish()


def test_full_fault_list_counts():
    nl = inverter_chain(3)
    faults = full_fault_list(nl)
    # 1 PI + 3 gate outputs, two polarities each.
    assert len(faults) == 8


def test_collapse_inverter_chain():
    """A chain of single-fanout inverters collapses to one class per polarity."""
    nl = inverter_chain(4)
    collapsed = collapse_faults(nl)
    assert collapsed.n_collapsed == 2
    assert collapsed.n_uncollapsed == 10


def test_collapse_keeps_fanout_stems():
    b = NetlistBuilder("stem")
    a = b.input("a")
    x = b.not_(a)
    b.output(b.not_(x))
    b.output(b.buf(x))
    nl = b.finish()
    collapsed = collapse_faults(nl)
    # x has fanout 2, so a's faults collapse into x's but x's faults do not
    # collapse into either branch.
    nets_with_faults = {f.net for f in collapsed.faults}
    assert nl.net_id("a") not in nets_with_faults


def test_and_gate_collapse():
    b = NetlistBuilder("and2")
    a = b.input("a")
    c = b.input("c")
    b.output(b.and_(a, c))
    collapsed = collapse_faults(b.finish())
    # Uncollapsed: 6.  a-sa0, c-sa0 and out-sa0 are equivalent: 4 classes.
    assert collapsed.n_collapsed == 4
    assert collapsed.n_uncollapsed == 6


def test_const_nets_untestable_polarity_dropped():
    b = NetlistBuilder("constdrop")
    a = b.input("a")
    zero = b.const0()
    b.output(b.or_(a, zero))
    collapsed = collapse_faults(b.finish())
    assert Fault(zero, 0) not in collapsed.faults
    # const0 stuck-at-1 is a real (testable) fault and must be kept.
    roots = set(collapsed.faults)
    assert any(f.net == zero and f.stuck_at == 1 for f in roots) or \
        any(f.stuck_at == 1 for f in roots)


def test_fault_describe():
    nl = inverter_chain(1)
    fault = Fault(nl.net_id("a"), 1)
    assert fault.describe(nl) == "a sa1"


def test_multiplier_fault_universe_magnitude():
    """Order-of-magnitude check against the paper's 2162 multiplier faults."""
    collapsed = collapse_faults(make_multiplier(8, 18))
    assert 800 <= collapsed.n_collapsed <= 4000


def test_addsub_fault_universe_magnitude():
    """Paper: 700 faults on the 18-bit adder/subtracter."""
    collapsed = collapse_faults(make_addsub(18))
    assert 200 <= collapsed.n_collapsed <= 1500


def test_collapsed_is_subset_of_full():
    nl = make_addsub(4)
    full = set(full_fault_list(nl))
    collapsed = collapse_faults(nl)
    assert set(collapsed.faults) <= full
    assert collapsed.n_collapsed < len(full)
