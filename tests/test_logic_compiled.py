"""Compiled evaluators must be bit-identical to the interpreted simulator."""

import random

from hypothesis import given, settings, strategies as st

from repro.logic.compiled import CompiledEvaluator, CompiledEvaluator3
from repro.logic.simulator import CombSimulator
from repro.rtl.arith import make_addsub
from repro.rtl.multiplier import make_multiplier
from repro.rtl.shifter import make_shifter


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**18 - 1), st.integers(0, 2**18 - 1),
       st.integers(0, 1))
def test_compiled_matches_interpreted_addsub(a, b, sub):
    nl = make_addsub(18)
    interp = CombSimulator(nl)
    compiled = CompiledEvaluator(nl)
    inputs = {}
    for name, word in (("a", a), ("b", b), ("sub", sub)):
        for i, net in enumerate(nl.buses[name]):
            inputs[net] = (word >> i) & 1
    assert compiled.run(inputs) == interp.run(inputs)


def test_compiled_pattern_parallel():
    nl = make_multiplier(4, 8)
    interp = CombSimulator(nl)
    compiled = CompiledEvaluator(nl)
    rng = random.Random(1)
    inputs = {net: rng.getrandbits(64) for net in nl.inputs}
    assert compiled.run(inputs, 64) == interp.run(inputs, 64)


def test_compiled3_full_assignment_matches_binary():
    """With every PI assigned, 3-valued equals binary simulation."""
    nl = make_shifter(8, 4)
    interp = CombSimulator(nl)
    compiled3 = CompiledEvaluator3(nl)
    rng = random.Random(9)
    for _ in range(20):
        assignment = {net: rng.randrange(2) for net in nl.inputs}
        is1, is0 = compiled3.run(assignment)
        binary = interp.run(assignment)
        for net in range(nl.n_nets):
            assert is1[net] != is0[net], "fully assigned -> fully known"
            assert is1[net] == binary[net]


def test_compiled3_partial_assignment_is_conservative():
    """Unknowns must never contradict any completion of the inputs."""
    nl = make_addsub(4)
    compiled3 = CompiledEvaluator3(nl)
    interp = CombSimulator(nl)
    rng = random.Random(4)
    inputs = list(nl.inputs)
    for _ in range(10):
        known = {n: rng.randrange(2) for n in inputs if rng.random() < 0.5}
        is1, is0 = compiled3.run(known)
        # Any completion must agree with every determined net.
        for _ in range(5):
            full = dict(known)
            for n in inputs:
                full.setdefault(n, rng.randrange(2))
            binary = interp.run(full)
            for net in range(nl.n_nets):
                if is1[net]:
                    assert binary[net] == 1
                if is0[net]:
                    assert binary[net] == 0


def test_compiled3_rejects_sequential():
    import pytest
    from repro.logic.builder import NetlistBuilder
    b = NetlistBuilder("seq")
    a = b.input("a")
    q = b.dff(a)
    b.output(q)
    with pytest.raises(ValueError):
        CompiledEvaluator3(b.finish())
