"""Tests for the template architecture (ld-rnd trapping, register masking)."""

import pytest

from repro._util import bits
from repro.bist.lfsr import Lfsr
from repro.bist.template import RandomLoad, TemplateArchitecture
from repro.dsp.core import DspCore
from repro.dsp.isa import Instruction, LD_RND, Opcode, decode


def simple_template():
    return [
        RandomLoad(dest=0),
        RandomLoad(dest=1),
        Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
        Instruction(Opcode.OUT, regb=2),
    ]


def test_empty_program_rejected():
    with pytest.raises(ValueError):
        TemplateArchitecture([])


def test_ld_rnd_trapped_into_ldi():
    arch = TemplateArchitecture(simple_template(), mask_registers=False)
    words = arch.expand(1)
    first = decode(words[0])
    assert first.opcode is Opcode.LDI
    assert first.dest == 0


def test_template_words_keep_trap_opcode():
    arch = TemplateArchitecture(simple_template())
    raw = arch.template_words()
    assert bits(raw[0], 16, 12) == LD_RND
    assert bits(raw[2], 16, 12) == int(Opcode.MPYA)


def test_lfsr1_data_changes_across_iterations():
    arch = TemplateArchitecture(simple_template(), mask_registers=False)
    words = arch.expand(4)
    imms = [decode(w).imm for w in words[::4]]
    assert len(set(imms)) > 1


def test_register_masking_preserves_dataflow():
    """Masked programs must keep producer/consumer register consistency."""
    arch = TemplateArchitecture(simple_template(), lfsr2=Lfsr(8, seed=0x31))
    words = arch.expand(8)
    for i in range(0, len(words), 4):
        ld0 = decode(words[i])
        ld1 = decode(words[i + 1])
        mpy = decode(words[i + 2])
        out = decode(words[i + 3])
        assert mpy.rega == ld0.dest
        assert mpy.regb == ld1.dest
        assert out.regb == mpy.dest


def test_register_masking_varies_registers():
    arch = TemplateArchitecture(simple_template())
    words = arch.expand(16)
    dests = {decode(words[i]).dest for i in range(0, len(words), 4)}
    assert len(dests) > 2


def test_masked_program_executes_correctly():
    """The expanded stream must produce the product on the output port."""
    arch = TemplateArchitecture(simple_template())
    words = arch.expand(3)
    core = DspCore()
    ports = [core.step(w).port for w in words]
    # drain the pipeline
    from repro.dsp.isa import encode
    ports += [core.step(encode(Instruction(Opcode.NOP))).port
              for _ in range(4)]
    assert any(p != 0 for p in ports)


def test_vector_counting_matches_paper_formula():
    """Paper: 34 instructions x 6000 iterations = 204,000 vectors."""
    program = [Instruction(Opcode.NOP)] * 34
    arch = TemplateArchitecture(program)
    assert arch.n_vectors(6000) == 204000
    assert arch.program_length == 34


def test_expansion_is_deterministic():
    a = TemplateArchitecture(simple_template(),
                             lfsr1=Lfsr(16, seed=7), lfsr2=Lfsr(8, seed=9))
    b = TemplateArchitecture(simple_template(),
                             lfsr1=Lfsr(16, seed=7), lfsr2=Lfsr(8, seed=9))
    assert a.expand(10) == b.expand(10)


def test_no_mask_mode_passes_fields_through():
    program = [Instruction(Opcode.MPYA, rega=3, regb=4, dest=5)]
    arch = TemplateArchitecture(program, mask_registers=False)
    instr = decode(arch.expand(2)[0])
    assert (instr.rega, instr.regb, instr.dest) == (3, 4, 5)
