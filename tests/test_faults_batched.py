"""Differential sweep: batched vs interpreted fault-simulation engines.

The batched engine (:mod:`repro.faults.batched`) must be bit-for-bit
identical to the interpreted cone walk — detection masks, first-detect
indices under dropping and block re-chunking, ``LocalDetection``
faulty words, single-pattern faulty output words.  Both engines are
additionally graded against a brute-force per-pattern reference that
rebuilds each faulty machine by forcing the stuck net in a serial
:class:`CombSimulator` run — so the pair cannot agree on a shared bug.

Any disagreeing random netlist is dumped to ``tests/artifacts/`` as a
replayable JSON repro artifact, mirroring the cross-validation sweep.
"""

import json
import random
from pathlib import Path

import pytest

from repro.faults.batched import (
    DEFAULT_BLOCK_WIDTH, BatchedConeEngine, widen_blocks,
)
from repro.faults.combsim import CombFaultSimulator
from repro.logic.random_nets import netlist_to_doc, random_netlist
from repro.logic.simulator import CombSimulator, unpack_output
from repro.runtime.cache import clear_caches
from repro.runtime.errors import ConfigError

N_CASES = 25
N_BRUTE_CASES = 10
ARTIFACT_DIR = Path(__file__).parent / "artifacts"


def _dump_failure(netlist, seed, **extra):
    ARTIFACT_DIR.mkdir(exist_ok=True)
    doc = netlist_to_doc(netlist)
    doc["xval"] = {"seed": seed, **extra}
    path = ARTIFACT_DIR / f"batched_{netlist.name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def _netlist(seed):
    return random_netlist(2000 + seed, n_inputs=4 + seed % 5,
                          n_gates=24 + seed % 33,
                          name=f"randbatched{seed}")


def _blocks(netlist, seed, n_blocks=5, width=11):
    """Deliberately odd-width blocks, so re-chunking has work to do."""
    rng = random.Random(("batched-blocks", seed).__repr__())
    n_in = len(netlist.buses["in"])
    return [{"in": [rng.getrandbits(n_in) for _ in range(width)]}
            for _ in range(n_blocks)]


def _engines(netlist, compile_threshold):
    interpreted = CombFaultSimulator(netlist)
    batched = CombFaultSimulator(netlist, engine="batched", block_width=16)
    batched.batched_engine.compile_threshold = compile_threshold
    return interpreted, batched


# ----------------------------------------------------------------------
# Interpreted vs batched, both compile policies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(N_CASES))
@pytest.mark.parametrize("threshold", [0, 2], ids=["compiled", "adaptive"])
def test_detect_masks_bit_for_bit(seed, threshold):
    """Full detect() masks agree for every fault.

    ``threshold=0`` forces every cone through the compiled kernel;
    ``threshold=2`` exercises the warm-up hand-off between the
    interpreted walk and the kernel mid-run.
    """
    clear_caches()
    netlist = _netlist(seed)
    flat = {"in": [w for b in _blocks(netlist, seed) for w in b["in"]]}
    interpreted, batched = _engines(netlist, threshold)
    ri = interpreted.detect(flat)
    rb = batched.detect(flat)
    if ri != rb:
        bad = [f.describe(netlist) for f in ri if ri[f] != rb[f]]
        path = _dump_failure(netlist, seed, check="detect",
                             mismatched=bad[:10])
        pytest.fail(f"seed {seed}: {len(bad)} mask(s) disagree; "
                    f"repro dumped to {path}")


@pytest.mark.parametrize("seed", range(N_CASES))
@pytest.mark.parametrize("threshold", [0, 2], ids=["compiled", "adaptive"])
def test_dropping_first_detect_indices(seed, threshold):
    """run_with_dropping agrees on first-detect indices even though the
    batched engine re-chunks the odd-width incoming blocks to its own
    block width (global pattern order is preserved)."""
    clear_caches()
    netlist = _netlist(seed)
    blocks = _blocks(netlist, seed)
    interpreted, batched = _engines(netlist, threshold)
    di = interpreted.run_with_dropping(blocks)
    db = batched.run_with_dropping(blocks)
    if di != db:
        bad = {f.describe(netlist): (di[f], db[f])
               for f in di if di[f] != db[f]}
        path = _dump_failure(netlist, seed, check="dropping",
                             mismatched=dict(list(bad.items())[:10]))
        pytest.fail(f"seed {seed}: first-detect disagrees for "
                    f"{len(bad)} fault(s); repro dumped to {path}")


@pytest.mark.parametrize("seed", range(N_CASES))
def test_local_detection_and_faulty_words(seed):
    """LocalDetection masks and faulty word streams are identical."""
    clear_caches()
    netlist = _netlist(seed)
    block = _blocks(netlist, seed, n_blocks=1, width=9)[0]
    interpreted, batched = _engines(netlist, compile_threshold=0)
    for fault in interpreted.fault_list.faults:
        li = interpreted.local_detection(fault, block, ["out"])
        lb = batched.local_detection(fault, block, ["out"])
        assert li.detected_mask == lb.detected_mask, \
            f"seed {seed}: {fault.describe(netlist)}"
        assert li.faulty_words == lb.faulty_words, \
            f"seed {seed}: {fault.describe(netlist)}"
        wi = interpreted.faulty_output_word(
            fault, {"in": block["in"][0]}, "out")
        wb = batched.faulty_output_word(fault, {"in": block["in"][0]}, "out")
        assert wi == wb, f"seed {seed}: {fault.describe(netlist)}"


def test_paper_core_component_parity():
    """Both engines agree on a real paper-core component end to end."""
    from repro.dsp.components import component_by_name
    clear_caches()
    netlist = component_by_name("addsub").netlist()
    rng = random.Random(("batched-addsub",).__repr__())
    in_nets = set(netlist.inputs)
    buses = {name: nets for name, nets in netlist.buses.items()
             if nets and all(n in in_nets for n in nets)}
    blocks = [{name: [rng.getrandbits(len(nets)) for _ in range(27)]
               for name, nets in buses.items()} for _ in range(3)]
    flat = {name: [w for b in blocks for w in b[name]] for name in buses}
    interpreted = CombFaultSimulator(netlist)
    batched = CombFaultSimulator(netlist, engine="batched", block_width=64)
    batched.batched_engine.compile_threshold = 0
    assert interpreted.detect(flat) == batched.detect(flat)
    assert interpreted.run_with_dropping(blocks) == \
        batched.run_with_dropping(blocks)


# ----------------------------------------------------------------------
# Brute-force per-pattern reference (satellite: local_detection and
# faulty_output_word correctness, not just engine agreement)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(N_BRUTE_CASES))
def test_brute_force_reference(seed):
    """Each engine matches a serial forced-net faulty machine.

    For every fault and every pattern individually, the faulty machine
    is rebuilt from scratch by pinning the stuck net in a fresh
    :class:`CombSimulator` run; the detection mask and the faulty
    ``out`` words must match what both engines report.
    """
    clear_caches()
    netlist = _netlist(100 + seed)
    block = _blocks(netlist, 100 + seed, n_blocks=1, width=6)[0]
    words = block["in"]
    n_patterns = len(words)
    serial = CombSimulator(netlist)
    out_nets = netlist.buses["out"]
    in_nets = netlist.buses["in"]
    interpreted, batched = _engines(netlist, compile_threshold=0)
    for fault in interpreted.fault_list.faults:
        expect_mask = 0
        expect_words = []
        for k, word in enumerate(words):
            inputs = {net: (word >> i) & 1
                      for i, net in enumerate(in_nets)}
            good = serial.run(inputs, 1)
            faulty = serial.run(inputs, 1, forced={fault.net: fault.stuck_at})
            good_word = unpack_output([good[n] for n in out_nets], 0)
            faulty_word = unpack_output([faulty[n] for n in out_nets], 0)
            if faulty_word != good_word:
                expect_mask |= 1 << k
                expect_words.append(faulty_word)
            else:
                expect_words.append(good_word)
        for sim in (interpreted, batched):
            local = sim.local_detection(fault, block, ["out"])
            assert local.detected_mask == expect_mask, \
                f"seed {seed}: {fault.describe(netlist)} ({sim.engine})"
            assert local.faulty_words["out"] == expect_words, \
                f"seed {seed}: {fault.describe(netlist)} ({sim.engine})"
            word0 = sim.faulty_output_word(fault, {"in": words[0]}, "out")
            assert word0 == expect_words[0], \
                f"seed {seed}: {fault.describe(netlist)} ({sim.engine})"


# ----------------------------------------------------------------------
# widen_blocks
# ----------------------------------------------------------------------
def test_widen_blocks_rechunks_to_width():
    blocks = [{"a": list(range(i * 10, i * 10 + 10))} for i in range(5)]
    out = list(widen_blocks(blocks, 16))
    assert [len(b["a"]) for b in out] == [16, 16, 16, 2]
    assert [w for b in out for w in b["a"]] == list(range(50))


def test_widen_blocks_narrows_too():
    blocks = [{"a": list(range(20))}]
    out = list(widen_blocks(blocks, 8))
    assert [len(b["a"]) for b in out] == [8, 8, 4]


def test_widen_blocks_flushes_on_bus_set_change():
    blocks = [{"a": [1, 2, 3]}, {"a": [4], "b": [5]}]
    out = list(widen_blocks(blocks, 8))
    assert out == [{"a": [1, 2, 3]}, {"a": [4], "b": [5]}]


def test_widen_blocks_rejects_bad_blocks():
    with pytest.raises(ConfigError, match="no pattern buses"):
        list(widen_blocks([{}], 8))
    with pytest.raises(ConfigError, match="equal length"):
        list(widen_blocks([{"a": [1, 2], "b": [3]}], 8))
    with pytest.raises(ConfigError, match="block_width"):
        list(widen_blocks([{"a": [1]}], 0))


# ----------------------------------------------------------------------
# Configuration errors and knobs
# ----------------------------------------------------------------------
def test_unknown_engine_rejected():
    netlist = _netlist(0)
    with pytest.raises(ConfigError, match="unknown fault-simulation engine"):
        CombFaultSimulator(netlist, engine="vectorised")


def test_bad_block_width_rejected():
    netlist = _netlist(0)
    with pytest.raises(ConfigError, match="block_width"):
        CombFaultSimulator(netlist, engine="batched", block_width=-4)


def test_bad_compile_threshold_rejected():
    netlist = _netlist(0)
    with pytest.raises(ConfigError, match="compile_threshold"):
        BatchedConeEngine(netlist, compile_threshold=-1)


def test_default_block_width_applied():
    netlist = _netlist(0)
    sim = CombFaultSimulator(netlist, engine="batched")
    assert sim.batched_engine.block_width == DEFAULT_BLOCK_WIDTH
    assert CombFaultSimulator(netlist).batched_engine is None


def test_detect_rejects_empty_bus_patterns():
    """The regression this PR fixes: an empty stimulus used to surface
    as an unrelated error instead of naming the actual problem."""
    for engine in ("interpreted", "batched"):
        sim = CombFaultSimulator(_netlist(1), engine=engine)
        with pytest.raises(ConfigError, match="no pattern buses given"):
            sim.detect({})


def test_detect_rejects_unequal_bus_lengths():
    netlist = _netlist(2)
    for engine in ("interpreted", "batched"):
        sim = CombFaultSimulator(netlist, engine=engine)
        with pytest.raises(ConfigError, match="equal length"):
            sim.detect({"in": [1, 2], "out": [3]})
