"""Tests for entropy estimation and the controllability normalisation."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.entropy import (
    combine_independent,
    controllability_from_samples,
    histogram_entropy,
    per_bit_entropy,
)


def test_histogram_entropy_constant_is_zero():
    assert histogram_entropy([7] * 100) == 0.0


def test_histogram_entropy_uniform_two_values():
    assert histogram_entropy([0, 1] * 50) == pytest.approx(1.0)


def test_histogram_entropy_known_distribution():
    # p = (1/2, 1/4, 1/4): H = 1.5 bits.
    samples = [0] * 50 + [1] * 25 + [2] * 25
    assert histogram_entropy(samples) == pytest.approx(1.5)


def test_histogram_entropy_empty_rejected():
    with pytest.raises(ValueError):
        histogram_entropy([])


def test_per_bit_entropy_constant_zero():
    assert per_bit_entropy([0] * 64, 8) == 0.0
    assert per_bit_entropy([0xFF] * 64, 8) == 0.0


def test_per_bit_entropy_uniform_near_one():
    rng = random.Random(5)
    samples = [rng.randrange(1 << 18) for _ in range(4000)]
    assert per_bit_entropy(samples, 18) > 0.97


def test_per_bit_entropy_partial_randomness():
    """Only the low 4 of 8 bits random -> C close to 0.5."""
    rng = random.Random(9)
    samples = [rng.randrange(16) for _ in range(4000)]
    c = per_bit_entropy(samples, 8)
    assert 0.45 < c < 0.55


def test_per_bit_entropy_validates():
    with pytest.raises(ValueError):
        per_bit_entropy([], 4)
    with pytest.raises(ValueError):
        per_bit_entropy([1], 0)


def test_controllability_exact_for_narrow():
    samples = [0, 1, 2, 3] * 64
    assert controllability_from_samples(samples, 2) == pytest.approx(1.0)


def test_controllability_capped_at_one():
    rng = random.Random(1)
    samples = [rng.randrange(4) for _ in range(5000)]
    assert controllability_from_samples(samples, 2) <= 1.0


def test_controllability_wide_uses_per_bit():
    rng = random.Random(2)
    samples = [rng.randrange(1 << 18) for _ in range(500)]
    # Exact histogram over 2^18 bins would be ~log2(500)/18 ≈ 0.5 — the
    # per-bit path must report near-full controllability instead.
    assert controllability_from_samples(samples, 18) > 0.9


def test_combine_independent_paper_formula():
    """C(X,Y) = (1/2n)(C(X)+C(Y)) for equal n-bit ports."""
    assert combine_independent([(0.8, 18), (0.4, 18)]) == pytest.approx(0.6)


def test_combine_independent_width_weighting():
    # 18 random bits + 4 zero bits: (1.0*18 + 0*4)/22.
    assert combine_independent([(1.0, 18), (0.0, 4)]) == pytest.approx(18 / 22)


def test_combine_independent_validates():
    with pytest.raises(ValueError):
        combine_independent([])
    with pytest.raises(ValueError):
        combine_independent([(0.5, 0)])


@settings(max_examples=30)
@given(st.lists(st.integers(0, 255), min_size=2, max_size=300))
def test_entropy_bounds(samples):
    h = histogram_entropy(samples)
    assert 0.0 <= h <= 8.0
    assert h <= math.log2(len(samples)) + 1e-9
    c = per_bit_entropy(samples, 8)
    assert 0.0 <= c <= 1.0
