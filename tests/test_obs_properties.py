"""Property tests for the observability layer (repro.obs).

Three laws the layer's correctness rests on:

* **Span trees always balance.**  Whatever nested mix of clean exits,
  ``Exception`` raises and :class:`~repro.runtime.chaos.ChaosKill`
  (a ``BaseException``) a workload produces, every entered span is
  recorded exactly once, the thread-local stack ends empty, and the
  recorded tree is referentially intact.

* **Metric merges are associative and commutative.**  Counter, gauge
  and histogram snapshots merge to the same aggregate regardless of
  grouping or order.  (Observed values are dyadic rationals so float
  addition is exact — the law is about the merge operators, not about
  floating-point rounding.)

* **Sharded equals serial.**  Applying an op stream to one registry
  gives the same snapshot as splitting the stream across per-shard
  registries and merging — the invariant that makes pooled campaign
  metrics trustworthy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.schema import validate_span_record
from repro.obs.trace import Tracer
from repro.runtime.chaos import ChaosKill

# ----------------------------------------------------------------------
# Span balance under exceptions and ChaosKill
# ----------------------------------------------------------------------
#: A workload is a tree: leaves act ("ok" returns, "raise" throws an
#: Exception, "kill" throws a BaseException), inner nodes nest children.
WORKLOADS = st.recursive(
    st.sampled_from(["ok", "raise", "kill"]),
    lambda children: st.lists(children, max_size=3),
    max_leaves=12,
)


def _walk(tracer, node, entered):
    with tracer.span("node"):
        entered[0] += 1
        if node == "raise":
            raise ValueError("injected failure")
        if node == "kill":
            raise ChaosKill("injected kill")
        if isinstance(node, list):
            for child in node:
                _walk(tracer, child, entered)


@given(workload=WORKLOADS)
def test_span_trees_always_balance(workload):
    tracer = Tracer(seed=7)
    entered = [0]
    raised = False
    try:
        _walk(tracer, workload, entered)
    except (ValueError, ChaosKill):
        raised = True
    assert tracer.depth() == 0
    spans = [r for r in tracer.records if r["kind"] == "span"]
    assert len(spans) == entered[0]      # every entry produced one exit
    for record in spans:
        assert validate_span_record(record) == []
    ids = {record["id"] for record in spans}
    assert len(ids) == len(spans)        # sequence-keyed ids are unique
    for record in spans:                 # referential integrity
        assert record["parent"] == tracer.root_id \
            or record["parent"] in ids
    if raised:
        # The failing span (and everything it unwound through) is marked.
        assert any(record.get("attrs", {}).get("error")
                   in ("ValueError", "ChaosKill") for record in spans)
    else:
        assert not any("error" in record.get("attrs", {})
                       for record in spans)


# ----------------------------------------------------------------------
# Merge algebra
# ----------------------------------------------------------------------
#: Dyadic rationals: float addition over these is exact, so snapshot
#: equality tests the merge operators rather than rounding artefacts.
DYADIC = st.integers(min_value=0, max_value=2 ** 20).map(
    lambda n: n / 1024.0
)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("incr"), st.sampled_from("abc"),
                  st.integers(min_value=1, max_value=100)),
        st.tuples(st.just("gauge"), st.sampled_from("abc"), DYADIC),
        st.tuples(st.just("observe"), st.sampled_from("abc"), DYADIC),
    ),
    max_size=40,
)


def _apply(ops):
    registry = MetricsRegistry()
    for op, name, value in ops:
        if op == "incr":
            registry.incr(name, value)
        elif op == "gauge":
            registry.gauge_max(name, value)
        else:
            registry.observe(name, value)
    return registry.snapshot()


@settings(max_examples=60)
@given(a=OPS, b=OPS, c=OPS)
def test_snapshot_merge_is_associative(a, b, c):
    sa, sb, sc = _apply(a), _apply(b), _apply(c)
    assert merge_snapshots(merge_snapshots(sa, sb), sc) \
        == merge_snapshots(sa, merge_snapshots(sb, sc))


@settings(max_examples=60)
@given(a=OPS, b=OPS)
def test_snapshot_merge_is_commutative(a, b):
    sa, sb = _apply(a), _apply(b)
    assert merge_snapshots(sa, sb) == merge_snapshots(sb, sa)


@settings(max_examples=60)
@given(ops=OPS, splits=st.lists(st.integers(min_value=0, max_value=40),
                                max_size=3))
def test_sharded_merge_equals_serial_totals(ops, splits):
    """However the op stream is sharded, merging the per-shard
    snapshots reproduces the serial registry exactly."""
    bounds = sorted({min(s, len(ops)) for s in splits})
    shards, start = [], 0
    for bound in bounds + [len(ops)]:
        shards.append(ops[start:bound])
        start = bound
    serial = _apply(ops)
    assert merge_snapshots(*[_apply(shard) for shard in shards]) == serial


def test_histogram_merge_rejects_mismatched_bounds():
    left, right = MetricsRegistry(), MetricsRegistry()
    left.observe("h", 1.0)
    right.observe("h", 1.0, bounds=(0.5, 2.0))
    try:
        left.merge_snapshot(right.snapshot())
    except ValueError:
        pass
    else:
        raise AssertionError("bounds mismatch must not merge silently")
