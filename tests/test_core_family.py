"""Cross-core differential fleet: the family generator vs itself.

Twenty seeded design points (16 sampled + the paper core + three
hand-picked extremes) each get three independent checks:

* gate-level netlist vs behavioural simulator on a seeded random program;
* interpreted vs batched hierarchical fault grading on a small universe;
* Phase 2's dynamic mode-reachability vs the lint ISA rule's static one.

A failing point dumps its :meth:`CoreSpec.to_doc` (plus the seed and the
exact instruction words) as a replayable JSON artifact under
``tests/artifacts/`` — same idiom as the random-netlist cross-validation
fleet in ``test_cross_validation.py``.
"""

import json
import random
import zlib
from pathlib import Path

import pytest

from repro.dsp.core import DspCore
from repro.dsp.family import CoreBuild, CoreSpec
from repro.dsp.isa import Instruction, Opcode, encode
from repro.faults.hierarchical import (
    DspFaultUniverse,
    HierarchicalFaultSimulator,
    fault_unit_id,
)
from repro.harness.sweeps import sampled_specs
from repro.lint.modes import mode_reachability_crosscheck
from repro.logic.sequential import SequentialSimulator
from repro.metrics.table import build_metrics_table

FLEET_SEED = 77
N_SAMPLED = 16
PROGRAM_LENGTH = 48

ARTIFACT_DIR = Path(__file__).parent / "artifacts"

#: Hand-picked extremes: the paper core, the smallest legal machine,
#: the deepest pipeline, and a wide-accumulator no-limiter point.
_EXTREMES = [
    CoreSpec.paper(),
    CoreSpec(n_registers=4, operand_width=4, acc_width=10,
             pipeline_depth=3, shifter="dedicated", adder="carry-select",
             has_truncater=False, has_limiter=False),
    CoreSpec(n_registers=8, operand_width=6, acc_width=14,
             pipeline_depth=5, shifter="barrel", adder="ripple"),
    CoreSpec(n_registers=16, operand_width=8, acc_width=24,
             pipeline_depth=4, shifter="dedicated", adder="carry-select",
             has_limiter=False),
]


def _fleet_specs():
    specs = list(_EXTREMES)
    seen = set(specs)
    for spec in sampled_specs(N_SAMPLED, seed=FLEET_SEED):
        if spec not in seen:
            seen.add(spec)
            specs.append(spec)
    return specs


FLEET = _fleet_specs()
FLEET_IDS = [spec.label() for spec in FLEET]


def _dump_failure(spec, seed, **extra):
    """Write a failing design point as a replayable JSON repro artifact."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    doc = {"spec": spec.to_doc(), "family": {"seed": seed, **extra}}
    path = ARTIFACT_DIR / f"family_{spec.label()}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def _random_program(spec, seed, length=PROGRAM_LENGTH):
    """A seeded random instruction stream exercising every format."""
    rng = random.Random(seed)
    n = spec.n_registers
    opcodes = list(Opcode)
    words = []
    # Prime a few registers so the MAC family sees non-zero operands.
    for reg in range(min(4, n)):
        words.append(encode(Instruction(
            Opcode.LDI, imm=rng.randrange(256), dest=reg)))
    for _ in range(length):
        op = rng.choice(opcodes)
        words.append(encode(Instruction(
            op,
            rega=rng.randrange(n),
            regb=rng.randrange(n),
            dest=rng.randrange(n),
            imm=rng.randrange(256),
        )))
    words.extend(encode(Instruction(Opcode.OUT, regb=rng.randrange(n)))
                 for _ in range(3))
    return words


@pytest.fixture(params=FLEET, ids=FLEET_IDS)
def point(request):
    spec = request.param
    return spec, CoreBuild.get(spec)


def test_fleet_shape():
    assert len(FLEET) == len(_EXTREMES) + N_SAMPLED
    assert len(set(s.label() for s in FLEET)) == len(FLEET)
    for spec in FLEET:
        spec.validate()


def test_gate_vs_behavioral(point):
    """The netlist and the ISS agree cycle-for-cycle on a random program."""
    spec, build = point
    seed = FLEET_SEED ^ zlib.crc32(spec.label().encode()) & 0xFFFF
    words = _random_program(spec, seed)
    words += [encode(Instruction(Opcode.NOP))] * build.drain_length
    behav = build.make_core()
    gate = SequentialSimulator(build.netlist)
    for cycle, word in enumerate(words):
        r = behav.step(word)
        g = gate.step_bus({"instr": word})
        got = (bool(g["out_valid"]), g["out"])
        want = (r.out_valid, r.port)
        if got != want:
            path = _dump_failure(spec, seed, check="gate_vs_behavioral",
                                 cycle=cycle, words=words,
                                 behavioral=list(want), gate=list(got))
            pytest.fail(f"{spec.label()} diverges at cycle {cycle}: "
                        f"gate={got} behavioral={want} "
                        f"(repro artifact: {path})")


def _grade(build, words, engine):
    universe = DspFaultUniverse(components=["mux7"], include_regfile=False,
                                engine=engine, build=build)
    sim = HierarchicalFaultSimulator(universe=universe, block_size=32,
                                     checkpoint_every=8,
                                     propagation_window=16)
    result = sim.run(words, storage_fault_max_cycles=96)
    return sorted((fault_unit_id(f), c)
                  for f, c in result.first_detect.items())


def test_fault_sim_engine_parity(point):
    """Interpreted and batched engines detect identical (fault, cycle)s."""
    spec, build = point
    seed = 0x5EED ^ zlib.crc32(spec.label().encode()) & 0xFFFF
    words = _random_program(spec, seed, length=24)
    interpreted = _grade(build, words, "interpreted")
    batched = _grade(build, words, "batched")
    if interpreted != batched:
        path = _dump_failure(spec, seed, check="engine_parity", words=words,
                             interpreted=interpreted, batched=batched)
        pytest.fail(f"{spec.label()} engine mismatch "
                    f"({len(interpreted)} vs {len(batched)} detections; "
                    f"repro artifact: {path})")


def test_mode_reachability_static_vs_dynamic(point):
    """Phase 2's dynamic discard and the lint ISA rule name the same
    unreachable columns on every family point."""
    spec, build = point
    table = build_metrics_table(n_controllability_samples=3,
                                n_observability_good=1,
                                seed=FLEET_SEED,
                                build=None if spec.is_paper else build)
    dynamic_only, static_only = mode_reachability_crosscheck(
        table, build=None if spec.is_paper else build)
    if dynamic_only or static_only:
        path = _dump_failure(
            spec, FLEET_SEED, check="mode_reachability",
            dynamic_only=[list(c) for c in dynamic_only],
            static_only=[list(c) for c in static_only])
        pytest.fail(f"{spec.label()} reachability disagreement: "
                    f"dynamic_only={dynamic_only} static_only={static_only} "
                    f"(repro artifact: {path})")


def test_paper_point_is_paper_singletons():
    """The paper spec's build delegates to the historical single-core
    objects, so the fleet's first point is literally today's core."""
    build = CoreBuild.get(CoreSpec.paper())
    assert build.spec.is_paper
    core = build.make_core()
    assert isinstance(core, DspCore)
    paper = DspCore()
    rng = random.Random(3)
    for _ in range(20):
        word = rng.randrange(1 << 17)
        assert core.step(word) == paper.step(word)
