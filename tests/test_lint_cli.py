"""End-to-end tests for ``python -m repro lint``."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "lint"


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("NET001", "NET004", "PRG002", "PRG003", "ISA001",
                    "CMP001", "CMP002"):
        assert rule_id in out


def test_default_targets_clean_paper_core(capsys):
    """The shipped core/components/ISA carry no error-level findings."""
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 error" in out


def test_unknown_target_is_config_error(capsys):
    assert main(["lint", "bogus-target"]) == 2
    assert "unknown lint target" in capsys.readouterr().err


def test_unreadable_artifact_is_config_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["lint", str(bad)]) == 2
    assert "not JSON" in capsys.readouterr().err


def test_seeded_defect_artifacts_fail():
    assert main(["lint", str(EXAMPLES / "defective_netlist.json")]) == 1
    assert main(["lint", str(EXAMPLES / "dead_store_program.json")]) == 1
    assert main(["lint",
                 str(EXAMPLES / "unreachable_covers_program.json")]) == 1
    assert main(["lint", str(EXAMPLES / "campaigns.json")]) == 1


def test_clean_artifact_passes(capsys):
    assert main(["lint", str(EXAMPLES / "clean_netlist.json")]) == 0


def test_json_output_is_machine_readable(capsys):
    assert main(["lint", "--json",
                 str(EXAMPLES / "defective_netlist.json")]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == 1
    assert doc["counts"]["error"] >= 2
    rules = {f["rule"] for f in doc["findings"]}
    assert {"NET000", "NET001", "NET005"} <= rules
    for record in doc["findings"]:
        assert record["key"] == f"{record['rule']}@{record['location']}"


def test_min_severity_drops_lower_findings(capsys):
    assert main(["lint", "--json", "--min-severity", "error",
                 str(EXAMPLES / "defective_netlist.json")]) == 1
    doc = json.loads(capsys.readouterr().out)
    severities = {f["severity"] for f in doc["findings"]}
    assert severities == {"error"}


def test_baseline_roundtrip(tmp_path, capsys):
    """--write-baseline then --baseline suppresses exactly those keys."""
    target = str(EXAMPLES / "defective_netlist.json")
    baseline = str(tmp_path / "baseline.json")
    assert main(["lint", "--write-baseline", baseline, target]) == 0
    capsys.readouterr()
    assert main(["lint", "--baseline", baseline, target]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out and "baselined" in out
    # A finding not in the baseline still fails.
    assert main(["lint", "--baseline", baseline,
                 str(EXAMPLES / "campaigns.json"), target]) == 1


def test_baseline_rejects_wrong_version(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text('{"version": 99, "suppress": []}')
    assert main(["lint", "--baseline", str(baseline),
                 str(EXAMPLES / "clean_netlist.json")]) == 2


def test_strict_promotes_warnings(tmp_path, capsys):
    """A warnings-only subject passes by default and fails under --strict."""
    artifact = tmp_path / "warn.json"
    artifact.write_text(json.dumps({
        "kind": "program",
        "lines": [
            {"ld_rnd": 0}, {"ld_rnd": 1},
            {"asm": "mpya R0, R1, R2", "covers": [["addsub", 1]]},
            {"asm": "out R2"}, {"asm": "outa"},
        ],
    }))
    assert main(["lint", str(artifact)]) == 0
    capsys.readouterr()
    assert main(["lint", "--strict", str(artifact)]) == 1
    assert "PRG006" in capsys.readouterr().out


def test_committed_baseline_covers_default_targets(capsys):
    """The repo's lint-baseline.json keeps `--strict` green in CI."""
    baseline = EXAMPLES.parent.parent / "lint-baseline.json"
    assert baseline.exists()
    assert main(["lint", "--baseline", str(baseline), "--strict"]) == 0
