"""Tests for Phase 3: constraint study, frequency boosting, one-shots."""

import pytest

from repro.bist.template import RandomLoad
from repro.dsp.isa import Instruction, Opcode
from repro.selftest.phase3 import (
    ConstraintResult,
    OneShotSequence,
    append_one_shots,
    boost_frequency,
    constraint_study,
    discardable_modes,
)
from repro.selftest.program import ProgramLine, TestProgram


@pytest.fixture(scope="module")
def shifter_study():
    return constraint_study("shifter", n_patterns=2048)


def test_constraint_study_shape(shifter_study):
    """The paper's finding: excluding mode 01 collapses coverage, the
    fixed-shift modes barely matter."""
    by_modes = {r.allowed_modes: r for r in shifter_study}
    baseline = by_modes[(0, 1, 2, 3)]
    no_01 = by_modes[(0, 2, 3)]
    no_10 = by_modes[(0, 1, 3)]
    no_11 = by_modes[(0, 1, 2)]
    only_00_01 = by_modes[(0, 1)]
    assert no_01.fault_coverage < baseline.fault_coverage - 0.2
    assert no_10.n_undetected - baseline.n_undetected <= 8
    assert no_11.n_undetected - baseline.n_undetected <= 8
    assert only_00_01.n_undetected - baseline.n_undetected <= 12


def test_discardable_modes(shifter_study):
    """Modes 10 and 11 are discardable; mode 01 never is."""
    modes = discardable_modes(shifter_study, loss_budget=10)
    assert 2 in modes and 3 in modes
    assert 1 not in modes


def test_constraint_result_describe():
    r = ConstraintResult("shifter", (0, 1), 100, 95, 5)
    assert "shifter" in r.describe()
    assert "95.00%" in r.describe()


def boosted_fixture():
    program = TestProgram()
    program.add(RandomLoad(0), phase="wrapper")
    program.add(Instruction(Opcode.SHIFTA, rega=0, dest=2),
                phase="phase1", covers=[("shifter", 1)])
    program.add(Instruction(Opcode.OUT, regb=2), phase="wrapper",
                comment="observe result")
    program.add(Instruction(Opcode.MPYA, rega=0, regb=1, dest=3),
                phase="phase1", covers=[("multiplier", 0)])
    return program


def test_boost_frequency_repeats_targets():
    program = boosted_fixture()
    boosted = boost_frequency(program, components=("shifter",), repeats=3)
    shift_count = sum(
        1 for line in boosted.loop_lines
        if not isinstance(line.item, RandomLoad)
        and line.item.opcode is Opcode.SHIFTA
    )
    assert shift_count == 3
    # The wrapper following the shift is repeated too.
    out_count = sum(
        1 for line in boosted.loop_lines
        if not isinstance(line.item, RandomLoad)
        and line.item.opcode is Opcode.OUT
    )
    assert out_count == 3
    # Non-target instructions appear once.
    mpy_count = sum(
        1 for line in boosted.loop_lines
        if not isinstance(line.item, RandomLoad)
        and line.item.opcode is Opcode.MPYA
    )
    assert mpy_count == 1


def test_boost_frequency_validates():
    with pytest.raises(ValueError):
        boost_frequency(boosted_fixture(), repeats=0)


def test_boost_repeats_1_is_identity():
    program = boosted_fixture()
    assert len(boost_frequency(program, repeats=1)) == len(program)


def test_append_one_shots():
    program = boosted_fixture()
    from repro.faults.model import Fault
    seq = OneShotSequence(
        component="addsub",
        fault=Fault(0, 1),
        lines=[ProgramLine(item=Instruction(Opcode.LDI, imm=1, dest=4)),
               ProgramLine(item=Instruction(Opcode.OUT, regb=4))],
    )
    extended = append_one_shots(program, [seq])
    assert len(extended.one_shot_lines) == 2
    assert all(not l.in_loop for l in extended.one_shot_lines)
    assert len(extended.loop_lines) == len(program.loop_lines)
    assert extended.n_vectors(10) == 2 + 10 * len(program.loop_lines)
