"""Tests for lease-based job ownership, including a hypothesis
state-machine suite driving arbitrary interleavings of grant, renew,
expiry, reclaim and terminal transitions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.lease import Lease, LeaseError, LeaseTable


def make_table(start=100.0):
    state = {"now": start}
    table = LeaseTable(clock=lambda: state["now"])
    return table, state


# ----------------------------------------------------------------------
# Directed unit tests
# ----------------------------------------------------------------------
def test_grant_and_fence_roundtrip():
    table, state = make_table()
    lease = table.grant("j", "w1", ttl=10.0, epoch=1)
    assert lease.token == 1
    assert table.validate("j", lease.token)
    assert not table.validate("j", lease.token + 1)


def test_double_grant_refused():
    table, _ = make_table()
    table.grant("j", "w1", ttl=10.0, epoch=1)
    with pytest.raises(LeaseError, match="live lease"):
        table.grant("j", "w2", ttl=10.0, epoch=1)


def test_tokens_strictly_increase_across_reclaims():
    table, state = make_table()
    first = table.grant("j", "w1", ttl=10.0, epoch=1)
    state["now"] += 11.0
    assert table.expired(epoch=1) == [first]
    table.drop("j", first.token)
    second = table.grant("j", "w2", ttl=10.0, epoch=1)
    assert second.token == first.token + 1


def test_expiry_makes_reclaimable_not_invalid():
    """Past the TTL the lease is *reclaimable*; until the scheduler
    actually drops it, the token still names the current lease."""
    table, state = make_table()
    lease = table.grant("j", "w1", ttl=5.0, epoch=1)
    state["now"] += 6.0
    assert table.validate("j", lease.token)   # still the current lease
    assert table.expired(epoch=1) == [lease]  # ... but reclaimable


def test_stale_epoch_is_reclaimable_immediately():
    table, state = make_table()
    lease = table.grant("j", "w1", ttl=1000.0, epoch=1)
    assert table.expired(epoch=1) == []
    assert table.expired(epoch=2) == [lease]  # dead incarnation's grant


def test_renew_extends_only_current_token():
    table, state = make_table()
    lease = table.grant("j", "w1", ttl=5.0, epoch=1)
    state["now"] += 3.0
    renewed = table.renew("j", lease.token, ttl=5.0)
    assert renewed is not None
    assert renewed.expires_at == state["now"] + 5.0
    assert table.renew("j", lease.token + 7, ttl=5.0) is None


def test_drop_requires_matching_token():
    table, _ = make_table()
    lease = table.grant("j", "w1", ttl=5.0, epoch=1)
    assert table.drop("j", lease.token + 1) is None
    assert table.drop("j", lease.token) == lease
    assert table.get("j") is None


def test_terminal_job_never_leasable_again():
    table, _ = make_table()
    lease = table.grant("j", "w1", ttl=5.0, epoch=1)
    table.mark_terminal("j")
    assert table.get("j") is None  # terminal drops any live lease
    with pytest.raises(LeaseError, match="terminal"):
        table.grant("j", "w2", ttl=5.0, epoch=1)


def test_lease_age():
    lease = Lease(job_id="j", worker="w", token=1, epoch=1,
                  granted_at=10.0, expires_at=20.0)
    assert lease.age(now=15.0) == 5.0
    assert lease.age(now=5.0) == 0.0  # clock skew never goes negative


# ----------------------------------------------------------------------
# Property: arbitrary interleavings preserve the ownership invariants
# ----------------------------------------------------------------------
#: One step of the interleaving: (operation, job index, tick seconds).
_STEPS = st.lists(
    st.tuples(
        st.sampled_from(
            ("grant", "renew", "reclaim", "complete", "tick",
             "stale_renew", "stale_drop")),
        st.integers(min_value=0, max_value=2),   # job index
        st.floats(min_value=0.0, max_value=7.0),  # clock advance
    ),
    min_size=1, max_size=40,
)


@settings(max_examples=200, deadline=None)
@given(steps=_STEPS)
def test_lease_state_machine_invariants(steps):
    """Under any interleaving of grants, renewals, expiries, reclaims
    and completions: every job holds at most one live lease, fencing
    tokens strictly increase per job, a stale token never acts, and a
    terminal job is never resurrected."""
    table, state = make_table()
    ttl = 5.0
    jobs = [f"job{i}" for i in range(3)]
    last_token = {j: 0 for j in jobs}
    terminal = set()

    for op, index, tick in steps:
        job = jobs[index]
        state["now"] += tick
        current = table.get(job)

        if op == "grant":
            if job in terminal:
                with pytest.raises(LeaseError):
                    table.grant(job, "w", ttl=ttl, epoch=1)
            elif current is not None:
                with pytest.raises(LeaseError):
                    table.grant(job, "w", ttl=ttl, epoch=1)
            else:
                lease = table.grant(job, "w", ttl=ttl, epoch=1)
                # Fencing tokens strictly increase, across any history.
                assert lease.token == last_token[job] + 1
                last_token[job] = lease.token
        elif op == "renew" and current is not None:
            renewed = table.renew(job, current.token, ttl=ttl)
            assert renewed is not None
            assert renewed.token == current.token  # renewal never mints
        elif op == "stale_renew":
            # A token that was never issued (or long superseded).
            assert table.renew(job, last_token[job] + 5, ttl=ttl) is None
        elif op == "stale_drop":
            assert table.drop(job, last_token[job] + 5) is None
        elif op == "reclaim":
            for lease in table.expired(epoch=1):
                dropped = table.drop(lease.job_id, lease.token)
                assert dropped is not None
                # Reclamation never touches a terminal job.
                assert lease.job_id not in terminal
        elif op == "complete" and current is not None:
            table.mark_terminal(job)
            terminal.add(job)
        # op == "tick": only the clock moved.

        # ---- global invariants, checked after every step ------------
        live = table.live_jobs()
        assert len(live) == len(set(live))  # at most one lease per job
        for job_id in live:
            assert job_id not in terminal   # no terminal resurrection
            lease = table.get(job_id)
            assert lease.token == last_token[job_id]  # newest grant wins
        for job_id in terminal:
            assert table.is_terminal(job_id)
            assert table.get(job_id) is None
