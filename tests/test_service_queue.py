"""Tests for the service job journal (hash-chained JSONL + spool)."""

import json
import os

import pytest

from repro.runtime.errors import CheckpointCorruptError
from repro.runtime.queue import (
    EVENT_TYPES,
    FORMAT_VERSION,
    HEADER_KIND,
    JobJournal,
)


def make_journal(tmp_path, events=()):
    journal = JobJournal(str(tmp_path / "svc.jsonl"))
    journal.create({"owner": "test"})
    for event in events:
        journal.append(dict(event))
    journal.close()
    return journal


def test_create_and_load_roundtrip(tmp_path):
    journal = make_journal(tmp_path, [
        {"event": "start", "epoch": 1},
        {"event": "submit", "job": "a", "spec": {"job_id": "a"}},
    ])
    header, events, defect = journal.load()
    assert header["kind"] == HEADER_KIND
    assert header["version"] == FORMAT_VERSION
    assert defect is None
    assert [e["event"] for e in events] == ["start", "submit"]


def test_append_chains_records(tmp_path):
    journal = make_journal(tmp_path, [{"event": "start", "epoch": 1}])
    _, events, _ = journal.load()
    assert "chain" in events[0]


def test_unknown_event_type_rejected(tmp_path):
    journal = make_journal(tmp_path)
    journal.load()
    with pytest.raises(CheckpointCorruptError, match="unknown"):
        journal.append({"event": "not-a-thing"})
    assert "not-a-thing" not in EVENT_TYPES


def test_torn_tail_is_tail_defect_and_repairable(tmp_path):
    journal = make_journal(tmp_path, [
        {"event": "start", "epoch": 1},
        {"event": "submit", "job": "a", "spec": {"job_id": "a"}},
    ])
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "lease", "job": "a"')  # no newline: torn
    _, events, defect = journal.load()
    assert defect is not None and defect.is_tail
    assert len(events) == 2  # the intact prefix survives
    _, events, defect = journal.load(repair=True)
    assert defect is not None
    # After repair the torn line is gone and appends chain cleanly on.
    journal.append({"event": "drain"})
    journal.close()
    _, events, defect = journal.load()
    assert defect is None
    assert [e["event"] for e in events] == ["start", "submit", "drain"]


def test_interior_edit_is_not_a_tail_defect(tmp_path):
    journal = make_journal(tmp_path, [
        {"event": "start", "epoch": 1},
        {"event": "submit", "job": "a", "spec": {"job_id": "a"}},
        {"event": "drain"},
    ])
    with open(journal.path, "r", encoding="utf-8") as handle:
        text = handle.read()
    with open(journal.path, "w", encoding="utf-8") as handle:
        handle.write(text.replace('"job": "a"', '"job": "b"'))
    _, events, defect = journal.load()
    assert defect is not None and not defect.is_tail
    assert "chain" in defect.reason
    assert [e["event"] for e in events] == ["start"]


def test_missing_header_raises(tmp_path):
    path = tmp_path / "svc.jsonl"
    path.write_text('{"not": "a header"}\n')
    with pytest.raises(CheckpointCorruptError, match="header"):
        JobJournal(str(path)).load()


def test_version_mismatch_raises(tmp_path):
    path = tmp_path / "svc.jsonl"
    path.write_text(json.dumps({
        "kind": HEADER_KIND, "version": FORMAT_VERSION + 1, "meta": {},
    }) + "\n")
    with pytest.raises(CheckpointCorruptError, match="version"):
        JobJournal(str(path)).load()


def test_append_without_repair_on_defective_journal_raises(tmp_path):
    journal = make_journal(tmp_path, [{"event": "start", "epoch": 1}])
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"torn')
    fresh = JobJournal(journal.path)
    with pytest.raises(CheckpointCorruptError, match="unrepaired"):
        fresh.append({"event": "drain"})


# ----------------------------------------------------------------------
# The multi-process submission spool
# ----------------------------------------------------------------------
def test_spool_roundtrip(tmp_path):
    journal = make_journal(tmp_path)
    journal.spool_request({"op": "submit", "spec": {"job_id": "a"}},
                          name="a.json")
    journal.spool_request({"op": "cancel", "job": "b"},
                          name="b.cancel.json")
    requests = journal.spooled_requests()
    assert [doc["op"] for _, doc in requests] == ["submit", "cancel"]
    for path, _ in requests:
        journal.consume_request(path)
    assert journal.spooled_requests() == []


def test_spool_ignores_tmp_debris(tmp_path):
    journal = make_journal(tmp_path)
    os.makedirs(journal.spool_dir, exist_ok=True)
    with open(os.path.join(journal.spool_dir, "half.json.tmp"),
              "w") as handle:
        handle.write('{"op": "subm')  # a submitter died mid-write
    assert journal.spooled_requests() == []


def test_consume_is_idempotent(tmp_path):
    journal = make_journal(tmp_path)
    path = journal.spool_request({"op": "cancel", "job": "a"},
                                 name="a.cancel.json")
    journal.consume_request(path)
    journal.consume_request(path)  # crashed-ingest replay: no error
