"""``CoreSpec.paper()`` is pinned to the pre-family core, byte for byte.

The family builder's whole contract is that the paper point is not "a
very similar core" but *the* core: same netlist hash, same measured
metrics, same Phase 1 selection.  These tests route the existing golden
payloads through ``build=paper_build()`` — they must match the goldens
regenerated *before* the family layer existed, so any divergence between
the parameterized path and the historical singletons fails loudly.
"""

import pytest

from tests.test_goldens import TABLE1_PARAMS, TABLE2_PARAMS, _cell

from repro.dsp.family import CoreBuild, CoreSpec, paper_build
from repro.dsp.gatelevel import make_gatelevel_core
from repro.dsp.isa import Opcode, control_word
from repro.metrics.simple_metrics import build_table1
from repro.metrics.table import build_metrics_table
from repro.runtime.integrity import fingerprint_for_netlist
from repro.selftest.phase1 import run_phase1

#: The structural hash of the paper core's gate-level netlist at the
#: moment the family layer landed.  If this changes, the family
#: refactor altered the paper core — that is never an intended change.
PAPER_NETLIST_HASH = \
    "287a7304d18a0508c502078c50cca6a943b5b9f6bea7eb9bb7bfe9ced9949d88"


@pytest.fixture(scope="module")
def paper():
    return paper_build()


def test_paper_netlist_hash_pinned(paper):
    assert fingerprint_for_netlist(paper.netlist) == PAPER_NETLIST_HASH
    # ... and the build's netlist is the same object graph the historical
    # constructor produces, not merely an equivalent one.
    assert fingerprint_for_netlist(make_gatelevel_core()) == \
        PAPER_NETLIST_HASH


def test_paper_build_is_cached_singleton(paper):
    assert CoreBuild.get(CoreSpec.paper()) is paper


def test_paper_control_words_identical(paper):
    for op in Opcode:
        assert paper.control_word(op) == control_word(op), op.name


def test_table1_matches_pre_family_golden(golden):
    table = build_table1(**TABLE1_PARAMS)
    payload = {
        row: {col: _cell(cell.c, cell.o) for col, cell in cells.items()}
        for row, cells in table.items()
    }
    golden("table1.json", payload)


def test_table2_through_build_matches_pre_family_golden(golden, paper):
    table = build_metrics_table(**TABLE2_PARAMS, build=paper)
    payload = {}
    for row in table.rows:
        cells = {}
        for column in table.columns:
            cell = table.cell(row, column)
            if cell is None:
                continue
            label = f"{column[0]}:{column[1]}"
            cells[label] = _cell(cell.c, cell.o,
                                 covered=table.is_covered(row, column))
        payload[row.label] = cells
    golden("table2.json", payload)


def test_phase1_through_build_matches_pre_family_golden(golden, paper):
    table = build_metrics_table(**TABLE2_PARAMS, build=paper)
    result = run_phase1(table)
    payload = {
        "wrappers": [v.label for v in result.wrapper_rows],
        "wrapper_covered": [f"{c[0]}:{c[1]}" for c in result.wrapper_covered],
        "selections": [
            {"variant": variant.label,
             "columns": [f"{c[0]}:{c[1]}" for c in columns]}
            for variant, columns in result.selections
        ],
        "uncovered": [f"{c[0]}:{c[1]}" for c in result.uncovered],
    }
    golden("phase1_selection.json", payload)
