"""Tests for bus muxes, enabled registers and the 16x8 register file."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic.sequential import SequentialSimulator
from repro.logic.simulator import CombSimulator
from repro.rtl.mux import make_mux2_bus, mux2_reference
from repro.rtl.register import (
    make_register,
    make_register_file,
    register_reference,
)

WORD8 = st.integers(0, 255)


@given(WORD8, WORD8, st.integers(0, 1))
def test_mux2_gate_level(a, b, sel):
    sim = CombSimulator(make_mux2_bus(8))
    out = sim.evaluate_word({"a": a, "b": b, "sel": sel})
    assert out["out"] == mux2_reference(sel, a, b)


def test_mux2_reference():
    assert mux2_reference(0, 1, 2) == 1
    assert mux2_reference(1, 1, 2) == 2


def test_register_load_and_hold():
    sim = SequentialSimulator(make_register(8))
    sim.step_bus({"d": 0xAB, "en": 1})
    held = sim.step_bus({"d": 0xCD, "en": 0})
    assert held["q"] == 0xAB
    loaded = sim.step_bus({"d": 0xCD, "en": 1})
    assert loaded["q"] == 0xAB  # value visible *after* this edge
    assert sim.step_bus({"d": 0, "en": 0})["q"] == 0xCD


def test_register_reference():
    assert register_reference(5, 9, 1) == 9
    assert register_reference(5, 9, 0) == 5


def test_register_resets_to_zero():
    sim = SequentialSimulator(make_register(8))
    assert sim.step_bus({"d": 0xFF, "en": 1})["q"] == 0


@pytest.fixture(scope="module")
def regfile_sim():
    return make_register_file(16, 8)


def test_register_file_write_read(regfile_sim):
    sim = SequentialSimulator(regfile_sim)
    sim.step_bus({"wdata": 0x42, "waddr": 3, "wen": 1,
                  "raddr_a": 0, "raddr_b": 0})
    out = sim.step_bus({"wdata": 0, "waddr": 0, "wen": 0,
                        "raddr_a": 3, "raddr_b": 3})
    assert out["rdata_a"] == 0x42
    assert out["rdata_b"] == 0x42


def test_register_file_write_disabled(regfile_sim):
    sim = SequentialSimulator(regfile_sim)
    sim.step_bus({"wdata": 0x42, "waddr": 3, "wen": 0,
                  "raddr_a": 0, "raddr_b": 0})
    out = sim.step_bus({"wdata": 0, "waddr": 0, "wen": 0,
                        "raddr_a": 3, "raddr_b": 0})
    assert out["rdata_a"] == 0


def test_register_file_independent_registers(regfile_sim):
    sim = SequentialSimulator(regfile_sim)
    for reg in range(4):
        sim.step_bus({"wdata": 0x10 + reg, "waddr": reg, "wen": 1,
                      "raddr_a": 0, "raddr_b": 0})
    for reg in range(4):
        out = sim.step_bus({"wdata": 0, "waddr": 0, "wen": 0,
                            "raddr_a": reg, "raddr_b": (reg + 1) % 4})
        assert out["rdata_a"] == 0x10 + reg
        assert out["rdata_b"] == 0x10 + (reg + 1) % 4


def test_register_file_overwrite(regfile_sim):
    sim = SequentialSimulator(regfile_sim)
    sim.step_bus({"wdata": 1, "waddr": 7, "wen": 1, "raddr_a": 7, "raddr_b": 0})
    sim.step_bus({"wdata": 2, "waddr": 7, "wen": 1, "raddr_a": 7, "raddr_b": 0})
    out = sim.step_bus({"wdata": 0, "waddr": 0, "wen": 0,
                        "raddr_a": 7, "raddr_b": 0})
    assert out["rdata_a"] == 2


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 15), WORD8)
def test_register_file_roundtrip_random(regfile_sim, addr, data):
    sim = SequentialSimulator(regfile_sim)
    sim.step_bus({"wdata": data, "waddr": addr, "wen": 1,
                  "raddr_a": 0, "raddr_b": 0})
    out = sim.step_bus({"wdata": 0, "waddr": 0, "wen": 0,
                        "raddr_a": addr, "raddr_b": addr})
    assert out["rdata_a"] == data


def test_register_file_rejects_bad_size():
    with pytest.raises(ValueError):
        make_register_file(12, 8)
