"""Tests for fault-parallel sequential fault simulation."""

import random

import pytest

from repro.faults.combsim import CombFaultSimulator
from repro.faults.model import Fault, collapse_faults
from repro.faults.seqsim import SeqFaultSimulator
from repro.logic.builder import NetlistBuilder
from repro.rtl.arith import make_addsub
from repro.rtl.register import make_register


def accumulator4():
    """4-bit accumulator: acc <- acc + in."""
    from repro.rtl.arith import ripple_adder
    b = NetlistBuilder("acc4")
    data = b.input_bus("in", 4)
    d_nets = [b.net(f"d{i}") for i in range(4)]
    q = [b.dff(d_nets[i], name=f"acc[{i}]") for i in range(4)]
    b.netlist.add_bus("acc", q)
    total, _ = ripple_adder(b, q, data, b.const0(), drop_final_carry=True)
    from repro.logic.gates import GateType
    for i in range(4):
        b.netlist.add_gate(GateType.BUF, d_nets[i], (total[i],))
    for bit in q:
        b.netlist.add_output(bit)
    return b.finish()


def test_register_stuck_bit_detected():
    nl = make_register(4)
    sim = SeqFaultSimulator(nl)
    q0 = nl.net_id("q[0]")
    result = sim.run_sequence(
        {"d": [0xF, 0x0, 0xF], "en": [1, 1, 1]},
        faults=[Fault(q0, 0), Fault(q0, 1)],
    )
    # q[0] sa0: visible once a 1 was loaded (cycle 1 reads the first load).
    assert result.first_detect_cycle[Fault(q0, 0)] == 1
    # q[0] sa1: visible at reset (q should be 0 at cycle 0).
    assert result.first_detect_cycle[Fault(q0, 1)] == 0


def test_accumulator_state_fault_persists():
    nl = accumulator4()
    sim = SeqFaultSimulator(nl)
    acc0 = nl.net_id("acc[0]")
    result = sim.run_sequence(
        {"in": [0, 0, 1, 0]}, faults=[Fault(acc0, 1)]
    )
    assert result.first_detect_cycle[Fault(acc0, 1)] == 0


def test_full_grading_random_stimulus():
    nl = accumulator4()
    sim = SeqFaultSimulator(nl)
    rng = random.Random(3)
    stimulus = {"in": [rng.randrange(16) for _ in range(200)]}
    result = sim.run_sequence(stimulus)
    coverage = len(result.detected) / len(sim.fault_list.faults)
    assert coverage > 0.9


def test_matches_combinational_on_pure_comb_netlist():
    """On a DFF-free netlist, sequential grading equals combinational."""
    nl = make_addsub(3)
    rng = random.Random(11)
    words = [
        (rng.randrange(8), rng.randrange(8), rng.randrange(2))
        for _ in range(64)
    ]
    seq = SeqFaultSimulator(nl)
    seq_result = seq.run_sequence({
        "a": [w[0] for w in words],
        "b": [w[1] for w in words],
        "sub": [w[2] for w in words],
    })
    comb = CombFaultSimulator(nl, collapse_faults(nl))
    first = comb.run_with_dropping([{
        "a": [w[0] for w in words],
        "b": [w[1] for w in words],
        "sub": [w[2] for w in words],
    }])
    for fault, cycle in seq_result.first_detect_cycle.items():
        assert (cycle is None) == (first[fault] is None), fault
        if cycle is not None:
            assert cycle == first[fault], fault


def test_chunking_many_passes():
    """Results must be identical regardless of machines_per_pass."""
    nl = accumulator4()
    stimulus = {"in": [1, 2, 3, 4, 5, 6, 7, 8]}
    wide = SeqFaultSimulator(nl, machines_per_pass=63).run_sequence(stimulus)
    narrow = SeqFaultSimulator(nl, machines_per_pass=2).run_sequence(stimulus)
    assert wide.first_detect_cycle == narrow.first_detect_cycle


def test_bad_machines_per_pass():
    with pytest.raises(ValueError):
        SeqFaultSimulator(accumulator4(), machines_per_pass=0)


def test_mismatched_sequence_lengths_rejected():
    sim = SeqFaultSimulator(make_register(2))
    with pytest.raises(ValueError):
        sim.run_sequence({"d": [1, 2], "en": [1]})


def test_result_properties():
    nl = make_register(2)
    sim = SeqFaultSimulator(nl)
    result = sim.run_sequence({"d": [3, 0], "en": [1, 1]})
    assert set(result.detected) | set(result.undetected) == set(
        sim.fault_list.faults
    )
    assert result.n_cycles == 2
