"""Tests for the DSP kernels: numeric agreement with float references."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.kernels import (
    biquad,
    biquad_reference,
    dot_product,
    dot_product_reference,
    fir,
    fir_program,
    fir_reference,
    scale,
    scale_reference,
)

#: One output quantisation step is 1/16; rounding of each term of an
#: N-term kernel accumulates to roughly N/32 worst case.
Q = 1 / 16

SMALL = st.floats(min_value=-1.9, max_value=1.9)


def test_fir_matches_reference():
    rng = random.Random(3)
    samples = [rng.uniform(-2, 2) for _ in range(10)]
    taps = [0.5, 0.25, -0.125, 0.0625]
    got = fir(samples, taps)
    want = fir_reference(samples, taps)
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert abs(g - w) <= len(taps) * Q


def test_fir_rejects_too_many_taps():
    with pytest.raises(ValueError):
        fir_program([0.0], [0.1] * 5)


@settings(max_examples=15, deadline=None)
@given(st.lists(SMALL, min_size=1, max_size=6))
def test_fir_impulse_response_is_taps(samples):
    """Feeding a unit impulse reproduces the (quantised) taps."""
    taps = [0.5, -0.25, 0.125]
    got = fir([1.0] + [0.0] * (len(taps) - 1), taps)
    for g, tap in zip(got, taps):
        assert abs(g - tap) <= 2 * Q


def test_dot_product_matches_reference():
    xs = [0.5, -1.25, 2.0, 0.0625]
    ys = [1.0, 0.5, -0.75, 1.5]
    got = dot_product(xs, ys)
    want = dot_product_reference(xs, ys)
    assert abs(got - want) <= len(xs) * Q


def test_dot_product_validates_lengths():
    with pytest.raises(ValueError):
        dot_product([1.0], [1.0, 2.0])


def test_dot_product_orthogonal_vectors():
    assert abs(dot_product([1.0, 0.0], [0.0, 1.0])) <= Q


def test_biquad_matches_reference():
    samples = [1.0, 0.5, -0.5, 0.25, 0.0, -1.0]
    b_coeffs = (0.25, 0.5, 0.25)
    a_coeffs = (-0.5, 0.25)
    got = biquad(samples, b_coeffs, a_coeffs)
    want = biquad_reference(samples, b_coeffs, a_coeffs)
    for g, w in zip(got, want):
        # Feedback recirculates quantisation error; allow a wider band.
        assert abs(g - w) <= 0.5


def test_scale_saturates_like_limiter():
    samples = [0.5, 3.0, -3.0, 7.0, -7.0]
    got = scale(samples, 2.0)
    want = scale_reference(samples, 2.0)
    for g, w in zip(got, want):
        assert abs(g - w) <= 2 * Q
    assert got[3] == pytest.approx(127 / 16)   # clipped high
    assert got[4] == pytest.approx(-128 / 16)  # clipped low


@settings(max_examples=15, deadline=None)
@given(st.lists(SMALL, min_size=1, max_size=8),
       st.floats(min_value=-1.5, max_value=1.5))
def test_scale_within_bounds(samples, gain):
    for value in scale(samples, gain):
        assert -8.0 <= value <= 127 / 16
