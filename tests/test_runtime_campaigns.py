"""Tests for the campaign adapters, including the kill-and-resume
acceptance round trip on the hierarchical fault simulator."""

import random

import pytest

from repro.bist.template import RandomLoad, TemplateArchitecture
from repro.dsp.isa import Instruction, Opcode
from repro.faults.hierarchical import (
    DspFaultUniverse,
    HierarchicalFaultSimulator,
)
from repro.runtime.errors import CampaignError
from repro.runtime.campaigns import (
    CombSimCampaign,
    HierarchicalCampaign,
    MetricsCampaign,
)


def small_universe():
    return DspFaultUniverse(components=["mux7", "macreg"],
                            include_regfile=False)


def program_words(iterations=8):
    program = [
        RandomLoad(0), RandomLoad(1),
        Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
        Instruction(Opcode.OUT, regb=2),
        Instruction(Opcode.OUTA),
    ]
    return TemplateArchitecture(program).expand(iterations)


def make_campaign(words, checkpoint):
    sim = HierarchicalFaultSimulator(universe=small_universe(),
                                     block_size=32, checkpoint_every=16)
    return HierarchicalCampaign(words, simulator=sim,
                                checkpoint=checkpoint)


def count_grading_calls(campaign):
    """Instrument the campaign's simulator; returns the call log."""
    calls = []
    sim = campaign.simulator
    real_comb = sim.grade_comb_fault
    real_storage = sim.grade_storage_fault

    def comb(ctx, name, fault, continuous=True):
        calls.append(("comb", name, fault))
        return real_comb(ctx, name, fault, continuous=continuous)

    def storage(ctx, fault, max_cycles=None):
        calls.append(("storage", fault))
        return real_storage(ctx, fault, max_cycles)

    sim.grade_comb_fault = comb
    sim.grade_storage_fault = storage
    return calls


def by_description(result):
    return {fault.describe(): cycle
            for fault, cycle in result.first_detect.items()}


# ----------------------------------------------------------------------
# The acceptance round trip
# ----------------------------------------------------------------------
def test_hierarchical_kill_and_resume_roundtrip(tmp_path):
    """A campaign killed mid-run resumes from its checkpoint,
    re-executes zero completed units, and reports coverage identical to
    an uninterrupted run with the same seed."""
    words = program_words(8)
    path = str(tmp_path / "grade.jsonl")
    cutoff = 20

    uninterrupted = HierarchicalFaultSimulator(
        universe=small_universe(), block_size=32, checkpoint_every=16,
    ).run(words)
    n_units = len(make_campaign(words, None).units())
    assert cutoff < n_units

    # Kill mid-run: the unit-count cutoff stands in for a SIGKILL.
    first = make_campaign(words, path)
    outcome1 = first.run(max_units=cutoff)
    assert outcome1.report.interrupted
    assert outcome1.report.n_executed == cutoff

    # Resume in a fresh process-equivalent (new campaign, new simulator).
    second = make_campaign(words, path)
    calls = count_grading_calls(second)
    outcome2 = second.run(resume=True)
    assert not outcome2.report.interrupted
    assert outcome2.report.n_resumed == cutoff
    assert outcome2.report.n_executed == n_units - cutoff
    assert len(calls) == n_units - cutoff   # zero completed units re-ran

    # The reassembled result matches the uninterrupted run exactly.
    assert by_description(outcome2.result) == by_description(uninterrupted)
    report_a = outcome2.result.coverage_report()
    report_b = uninterrupted.coverage_report()
    assert report_a.n_detected == report_b.n_detected
    assert report_a.fault_coverage == report_b.fault_coverage
    assert report_a.by_component == report_b.by_component

    # Resuming the now-complete campaign touches nothing at all.
    third = make_campaign(words, path)
    calls3 = count_grading_calls(third)
    outcome3 = third.run(resume=True)
    assert calls3 == []
    assert outcome3.report.n_executed == 0
    assert outcome3.report.n_resumed == n_units
    assert by_description(outcome3.result) == by_description(uninterrupted)


def test_hierarchical_fingerprint_mismatch_rejected(tmp_path):
    path = str(tmp_path / "grade.jsonl")
    make_campaign(program_words(4), path).run()
    with pytest.raises(CampaignError):
        make_campaign(program_words(6), path).run(resume=True)


def test_hierarchical_campaign_matches_direct_run():
    """Without checkpoint or interruption the campaign is a pure
    reorganisation of ``HierarchicalFaultSimulator.run``."""
    words = program_words(6)
    direct = HierarchicalFaultSimulator(
        universe=small_universe(), block_size=32, checkpoint_every=16,
    ).run(words)
    outcome = make_campaign(words, None).run()
    assert by_description(outcome.result) == by_description(direct)
    assert outcome.result.n_vectors == direct.n_vectors
    counts = outcome.report.counts()
    assert counts["quarantined"] == 0 and counts["degraded"] == 0


# ----------------------------------------------------------------------
# Combinational campaign
# ----------------------------------------------------------------------
def comb_blocks(netlist, n_patterns=96, block=32, seed=9):
    rng = random.Random(seed)
    buses = [(name, nets) for name, nets in netlist.buses.items()
             if all(n in netlist.inputs for n in nets)]
    words = {name: [rng.randrange(1 << len(nets))
                    for _ in range(n_patterns)]
             for name, nets in buses}
    return [
        {name: values[i:i + block] for name, values in words.items()}
        for i in range(0, n_patterns, block)
    ]


def test_combsim_campaign_matches_run_with_dropping(tmp_path):
    from repro.dsp.components import component_by_name
    from repro.faults.combsim import CombFaultSimulator
    from repro.faults.model import collapse_faults

    netlist = component_by_name("mux7").netlist()
    sim = CombFaultSimulator(netlist, collapse_faults(netlist))
    blocks = comb_blocks(netlist)
    expected = sim.run_with_dropping(blocks)

    path = str(tmp_path / "comb.jsonl")
    campaign = CombSimCampaign(sim, blocks, checkpoint=path)
    outcome = campaign.run()
    assert outcome.result == expected

    # Resume re-executes nothing and rebuilds the same mapping.
    resumed = CombSimCampaign(sim, blocks, checkpoint=path).run(resume=True)
    assert resumed.report.n_executed == 0
    assert resumed.result == expected


# ----------------------------------------------------------------------
# Metrics campaign
# ----------------------------------------------------------------------
def test_metrics_campaign_matches_build_metrics_table(tmp_path):
    from repro.metrics.controllability import default_variants
    from repro.metrics.table import build_metrics_table

    variants = default_variants()[:2]
    expected = build_metrics_table(variants=variants,
                                   n_controllability_samples=8,
                                   n_observability_good=2)
    path = str(tmp_path / "metrics.jsonl")
    campaign = MetricsCampaign(variants=variants,
                               n_controllability_samples=8,
                               n_observability_good=2,
                               checkpoint=path)
    outcome = campaign.run()
    assert outcome.result.cells == expected.cells
    assert outcome.result.fault_counts == expected.fault_counts

    resumed = MetricsCampaign(variants=variants,
                              n_controllability_samples=8,
                              n_observability_good=2,
                              checkpoint=path).run(resume=True)
    assert resumed.report.n_executed == 0
    assert resumed.report.n_resumed == len(variants)
    assert resumed.result.cells == expected.cells


def test_metrics_campaign_degraded_fallback_still_fills_cells():
    """A variant that times out degrades to the reduced-sample fallback
    and its cells are still present (tagged degraded)."""
    from repro.metrics.controllability import default_variants
    from repro.runtime.runner import CampaignRunner

    variants = default_variants()[:1]
    campaign = MetricsCampaign(
        variants=variants, n_controllability_samples=10,
        n_observability_good=2,
        runner=CampaignRunner(unit_timeout=1e-7, max_retries=0,
                              sleep=lambda _: None),
    )
    outcome = campaign.run()
    result = outcome.report[f"variant:{variants[0].label}"]
    assert result.status == "degraded"
    assert outcome.report.counts()["degraded"] == 1
    assert any(key[0] == variants[0].label for key in outcome.result.cells)
