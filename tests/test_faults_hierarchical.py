"""Tests for the hierarchical core fault simulator."""

import pytest

from repro.bist.template import RandomLoad, TemplateArchitecture
from repro.dsp.isa import Instruction, Opcode
from repro.faults.hierarchical import (
    ComponentFault,
    DspFaultUniverse,
    HierarchicalFaultSimulator,
    StorageFault,
    storage_fault_core,
    _set_bit_positions,
    _spread,
)
from repro.faults.model import Fault


def small_universe():
    return DspFaultUniverse(
        components=["mux7", "truncater", "macreg", "acca"],
        include_regfile=False,
    )


def test_universe_composition():
    universe = small_universe()
    counts = universe.counts_by_component()
    assert set(counts) == {"mux7", "truncater", "macreg", "acca"}
    assert counts["acca"] == 74   # 18 q + 18 d bits x2 + 2 enable
    assert counts["macreg"] == 32  # 8 q + 8 d bits x2, no enable


def test_universe_excludes_component_input_faults():
    universe = DspFaultUniverse(components=["limiter"],
                                include_regfile=False)
    from repro.dsp.components import component_by_name
    netlist = component_by_name("limiter").netlist()
    pi_nets = set(netlist.inputs)
    assert all(f.net not in pi_nets for f in universe.comb_faults["limiter"])


def test_full_universe_includes_regfile():
    universe = DspFaultUniverse()
    assert universe.counts_by_component()["regfile"] == 256


def test_fault_describe():
    sf = StorageFault(("acca",), "q", 3, 1)
    assert sf.describe() == "acca.q[3] sa1"
    universe = small_universe()
    cf = ComponentFault("mux7", universe.comb_faults["mux7"][0])
    assert cf.describe().startswith("mux7/")


def test_storage_fault_core_q_stuck():
    core = storage_fault_core(StorageFault(("acca",), "q", 8, 1))
    assert core.state.acc_a & (1 << 8)


def test_storage_fault_core_en_stuck_zero():
    """en-sa0: the accumulator never loads."""
    from repro.dsp.isa import assemble_program
    core = storage_fault_core(StorageFault(("acca",), "en", 0, 0))
    core.run_program(assemble_program(
        "ld 0x10, R1\nld 0x10, R2\nMPYA R1, R2, R3"
    ))
    assert core.state.acc_a == 0


def test_storage_fault_core_d_stuck():
    from repro.dsp.isa import assemble_program
    core = storage_fault_core(StorageFault(("acca",), "d", 0, 1))
    core.run_program(assemble_program(
        "ld 0x10, R1\nld 0x10, R2\nMPYA R1, R2, R3"
    ))
    assert core.state.acc_a & 1  # bit 0 forced on write


def program_words(iterations=20):
    program = [
        RandomLoad(0), RandomLoad(1),
        Instruction(Opcode.MPYA, rega=0, regb=1, dest=2),
        Instruction(Opcode.OUT, regb=2),
        Instruction(Opcode.MACB_ADD, rega=0, regb=1, dest=3),
        Instruction(Opcode.OUT, regb=3),
        Instruction(Opcode.OUTA),
        Instruction(Opcode.OUTB),
    ]
    return TemplateArchitecture(program).expand(iterations)


@pytest.fixture(scope="module")
def small_run():
    sim = HierarchicalFaultSimulator(universe=small_universe(),
                                     block_size=64, checkpoint_every=16)
    return sim.run(program_words(20))


def test_detects_most_small_universe_faults(small_run):
    report = small_run.coverage_report()
    assert report.fault_coverage > 0.8
    assert report.n_vectors == 160


def test_first_detect_cycles_are_plausible(small_run):
    for fault, cycle in small_run.first_detect.items():
        if cycle is not None:
            assert 0 <= cycle < small_run.n_vectors


def test_report_by_component(small_run):
    report = small_run.coverage_report()
    assert set(report.by_component) == {"mux7", "truncater", "macreg",
                                        "acca"}
    for detected, total in report.by_component.values():
        assert 0 <= detected <= total


def test_block_size_invariance():
    """Coverage should not depend much on block partitioning."""
    universe = DspFaultUniverse(components=["mux7", "macreg"],
                                include_regfile=False)
    words = program_words(10)
    a = HierarchicalFaultSimulator(
        universe=universe, block_size=32, checkpoint_every=16
    ).run(words)
    universe2 = DspFaultUniverse(components=["mux7", "macreg"],
                                 include_regfile=False)
    b = HierarchicalFaultSimulator(
        universe=universe2, block_size=80, checkpoint_every=16
    ).run(words)
    fc_a = a.coverage_report().fault_coverage
    fc_b = b.coverage_report().fault_coverage
    assert abs(fc_a - fc_b) < 0.1


def test_no_program_activity_means_no_detection():
    """NOP streams exercise nothing observable."""
    universe = DspFaultUniverse(components=["multiplier"],
                                include_regfile=False)
    sim = HierarchicalFaultSimulator(universe=universe)
    from repro.dsp.isa import encode
    words = [encode(Instruction(Opcode.NOP))] * 64
    result = sim.run(words)
    assert result.coverage_report().n_detected == 0


def test_bad_block_configuration():
    with pytest.raises(ValueError):
        HierarchicalFaultSimulator(universe=small_universe(),
                                   block_size=100, checkpoint_every=32)


def test_storage_fault_max_cycles_cap():
    universe = DspFaultUniverse(components=["macreg"],
                                include_regfile=False)
    sim = HierarchicalFaultSimulator(universe=universe)
    result = sim.run(program_words(10), storage_fault_max_cycles=8)
    for fault, cycle in result.first_detect.items():
        if isinstance(fault, StorageFault) and cycle is not None:
            assert cycle < 8


def test_set_bit_positions():
    assert _set_bit_positions(0b101001) == [0, 3, 5]
    assert _set_bit_positions(0) == []


def test_spread_sampling():
    assert _spread([1, 2, 3], 5) == [1, 2, 3]
    picked = _spread(list(range(100)), 5)
    assert len(picked) == 5
    assert picked[0] == 0 and picked[-1] == 99
