"""Tests for the 4-mode arithmetic shifter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro._util import mask, to_signed, to_unsigned
from repro.logic.simulator import CombSimulator
from repro.rtl.shifter import SHIFT_MODES, make_shifter, shifter_reference

WORD18 = st.integers(0, mask(18))


@pytest.fixture(scope="module")
def shifter18():
    return CombSimulator(make_shifter(18, 4))


def test_reference_pass_mode():
    assert shifter_reference(0x2ABCD, 0x5, 0) == 0x2ABCD


def test_reference_shift_by_amount():
    assert shifter_reference(1, 3, 1) == 8
    assert shifter_reference(1, 0, 1) == 1
    # amt = -1 (0xF): arithmetic right by 1
    assert shifter_reference(0b100, 0xF, 1) == 0b10
    # negative data, arithmetic right keeps sign
    neg = to_unsigned(-4, 18)
    assert to_signed(shifter_reference(neg, 0xF, 1), 18) == -2


def test_reference_fixed_modes():
    assert shifter_reference(0b011, 0, 2) == 0b110
    neg = to_unsigned(-8, 18)
    assert to_signed(shifter_reference(neg, 0, 3), 18) == -4


def test_gate_level_matches_reference_corners(shifter18):
    data_corners = [0, 1, mask(18), 1 << 17, 0x15555, 0x2AAAA, 0x00FF0]
    for data in data_corners:
        for amt in range(16):
            for mode in range(4):
                out = shifter18.evaluate_word(
                    {"data": data, "amt": amt, "mode": mode}
                )
                assert out["out"] == shifter_reference(data, amt, mode), (
                    data, amt, mode,
                )


@settings(max_examples=60)
@given(WORD18, st.integers(0, 15), st.integers(0, 3))
def test_gate_level_matches_reference_random(shifter18, data, amt, mode):
    out = shifter18.evaluate_word({"data": data, "amt": amt, "mode": mode})
    assert out["out"] == shifter_reference(data, amt, mode)


def test_shift_by_minus_eight(shifter18):
    """amt = -8 is the most negative amount; everything becomes sign."""
    neg = 1 << 17
    out = shifter18.evaluate_word({"data": neg, "amt": 0x8, "mode": 1})
    expected = to_unsigned(to_signed(neg, 18) >> 8, 18)
    assert out["out"] == expected


def test_left_shift_overflow_drops_bits():
    assert shifter_reference(mask(18), 7, 1) == (mask(18) << 7) & mask(18)


def test_mode_labels():
    assert SHIFT_MODES == {0: "00", 1: "01", 2: "10", 3: "11"}


def test_bad_mode_rejected():
    with pytest.raises(ValueError):
        shifter_reference(0, 0, 4)


def test_shifter_fault_universe_size():
    """Comparable order to the paper's 2028 shifter faults."""
    stats = make_shifter(18, 4).stats()
    assert 300 <= stats.n_gates <= 2500
