"""Tests for the ripple adder and adder/subtracter against word-level models."""

from hypothesis import given, strategies as st

from repro._util import mask
from repro.logic.simulator import CombSimulator
from repro.rtl.arith import addsub_reference, make_adder, make_addsub

WORD18 = st.integers(0, mask(18))
WORD8 = st.integers(0, mask(8))


def test_adder_exhaustive_4bit():
    sim = CombSimulator(make_adder(4))
    for a in range(16):
        for b in range(16):
            for cin in (0, 1):
                out = sim.evaluate_word({"a": a, "b": b, "cin": cin})
                total = a + b + cin
                assert out["sum"] == total & 0xF
                assert out["cout"] == total >> 4


@given(WORD18, WORD18)
def test_adder_18bit_matches(a, b):
    sim = CombSimulator(make_adder(18))
    out = sim.evaluate_word({"a": a, "b": b, "cin": 0})
    assert out["sum"] == (a + b) & mask(18)


@given(WORD18, WORD18, st.integers(0, 1))
def test_addsub_matches_reference(a, b, sub):
    sim = CombSimulator(make_addsub(18))
    out = sim.evaluate_word({"a": a, "b": b, "sub": sub})
    assert out["result"] == addsub_reference(a, b, sub, 18)


def test_addsub_subtract_wraps():
    sim = CombSimulator(make_addsub(8))
    out = sim.evaluate_word({"a": 0, "b": 1, "sub": 1})
    assert out["result"] == 0xFF


def test_addsub_pattern_parallel():
    """Many (a, b) pairs in one packed evaluation."""
    sim = CombSimulator(make_addsub(8))
    a_words = [0, 1, 100, 255, 77, 128]
    b_words = [0, 255, 50, 255, 77, 128]
    result = sim.run_bus(
        {"a": a_words, "b": b_words, "sub": [0] * 6},
        n_patterns=6,
    )
    assert result["result"] == [(a + b) & 0xFF for a, b in zip(a_words, b_words)]


def test_adder_netlist_size_scales():
    small = make_adder(4).stats()
    large = make_adder(18).stats()
    assert large.n_gates > small.n_gates
    assert large.n_dffs == 0
