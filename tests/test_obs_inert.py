"""The observability layer's inertness contract.

Same discipline as ``repro.runtime.chaos``: when no session is armed,
the layer must be *provably* absent — zero behavioural delta (the
deterministic golden campaign reproduces, byte for byte, goldens that
were generated before the obs layer existed) and near-zero timing
delta (tens of thousands of disabled hook calls complete in a small
fraction of a second).  Arming a session must not change behaviour
either: it may only add side channels (spans, metrics, timings).
"""

import time

import pytest

from tests.conftest import (
    GOLDEN_CAMPAIGN_FINGERPRINT,
    GOLDEN_DIR,
    campaign_report_payload,
    canonical_json,
    golden_campaign_runner,
    golden_campaign_units,
)

from repro import obs


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test here starts and ends with the layer disarmed."""
    obs.disable()
    yield
    obs.disable()


def _golden(name: str) -> str:
    return (GOLDEN_DIR / name).read_text()


def _run_campaign(tmp_path, tag):
    checkpoint = tmp_path / f"{tag}.jsonl"
    runner = golden_campaign_runner(str(checkpoint))
    report = runner.run(golden_campaign_units(),
                        fingerprint=GOLDEN_CAMPAIGN_FINGERPRINT)
    return report, checkpoint.read_text()


def test_disabled_campaign_matches_pre_obs_goldens(tmp_path):
    """Obs off: report payload and checkpoint bytes are byte-identical
    to the pre-obs goldens — the layer never ran, as far as the
    campaign's observable output can tell."""
    assert not obs.enabled()
    report, checkpoint_text = _run_campaign(tmp_path, "off")
    assert canonical_json(campaign_report_payload(report)) \
        == _golden("campaign_report.json")
    assert canonical_json({"jsonl": checkpoint_text.splitlines()}) \
        == _golden("campaign_checkpoint.json")
    assert report.timings == {}


def test_armed_campaign_is_behaviourally_identical(tmp_path):
    """Obs on: still byte-identical output; the session only *adds*
    side channels (spans, per-phase timings, unit-status counters)."""
    with obs.enabled_session(seed=2004) as session:
        report, checkpoint_text = _run_campaign(tmp_path, "on")
    assert canonical_json(campaign_report_payload(report)) \
        == _golden("campaign_report.json")
    assert canonical_json({"jsonl": checkpoint_text.splitlines()}) \
        == _golden("campaign_checkpoint.json")
    assert report.timings                      # side channel populated
    assert "runner.unit" in report.timings
    spans = [r for r in session.tracer.records if r["kind"] == "span"]
    assert {r["name"] for r in spans} >= {"campaign", "unit"}
    assert session.registry.counters["campaign.units.ok"].value == 6
    assert session.registry.counters["campaign.units.quarantined"].value == 1


def test_disabled_hooks_are_shared_noops():
    """The disarmed fast path allocates nothing: every call returns the
    same shared singleton (or None) and records no state anywhere."""
    assert obs.active() is None
    assert obs.span("x", key=1, attr=2) is obs.span("y")
    assert obs.section("x") is obs.section("y")
    assert obs.span("x").set(a=1) is obs.span("x")
    obs.incr("c", 5)
    obs.gauge_max("g", 2.0)
    obs.observe("h", 0.001)
    obs.point("p", k=1)
    assert obs.profile_timings() == {}
    assert obs.export_worker_payload() is None
    obs.merge_worker_payload({"metrics": {"counters": {"c": 1}}})
    obs.reset_after_fork()                     # all no-ops, no errors
    assert obs.active() is None


def test_disabled_overhead_is_negligible():
    """~40k disabled hook invocations inside a generous wall bound —
    the hot paths pay one ``is None`` check each when disarmed."""
    start = time.perf_counter()
    for _ in range(10_000):
        with obs.span("unit", key="u"), obs.section("runner.unit"):
            obs.incr("campaign.units.ok")
            obs.observe("campaign.unit_seconds", 0.001)
    elapsed = time.perf_counter() - start
    assert elapsed < 0.5, f"disabled obs hooks took {elapsed:.3f}s"
