"""Tests for PODEM, time-frame unrolling, and random-resistant targeting."""

import pytest

from repro.atpg.podem import Podem
from repro.atpg.random_resistant import (
    find_random_resistant,
    target_random_resistant,
)
from repro.atpg.unroll import unroll
from repro.faults.combsim import CombFaultSimulator
from repro.faults.model import Fault, collapse_faults
from repro.faults.seqsim import SeqFaultSimulator
from repro.logic.builder import NetlistBuilder
from repro.rtl.arith import make_addsub
from repro.rtl.multiplier import make_multiplier
from repro.rtl.saturate import make_limiter


def verify_pattern(netlist, fault, result):
    sim = CombFaultSimulator(netlist)
    words = result.pattern_words(netlist)
    detections = sim.detect({k: [v] for k, v in words.items()},
                            faults=[fault])
    return bool(detections[fault])


@pytest.mark.parametrize("maker", [
    lambda: make_addsub(6),
    lambda: make_limiter(),
])
def test_podem_detects_every_testable_fault(maker):
    nl = maker()
    engine = Podem(nl, backtrack_limit=5000)
    undetected = []
    for fault in collapse_faults(nl).faults:
        result = engine.generate(fault)
        if result.detected:
            assert verify_pattern(nl, fault, result), fault.describe(nl)
        elif result.status == "aborted":
            undetected.append(fault)
        # untestable faults are acceptable: redundancy exists
    assert not undetected, [f.describe(nl) for f in undetected]


@pytest.mark.parametrize("maker", [
    lambda: make_addsub(6),
    lambda: make_limiter(),
])
def test_guided_podem_detects_every_testable_fault(maker):
    """The SCOAP-guided backtrace produces verified patterns and proves
    the same redundancies as the unguided engine."""
    nl = maker()
    engine = Podem(nl, backtrack_limit=5000, guided=True)
    undetected = []
    for fault in collapse_faults(nl).faults:
        result = engine.generate(fault)
        if result.detected:
            assert verify_pattern(nl, fault, result), fault.describe(nl)
        elif result.status == "aborted":
            undetected.append(fault)
    assert not undetected, [f.describe(nl) for f in undetected]


def test_podem_counts_decisions_and_backtracks():
    nl = make_addsub(6)
    engine = Podem(nl, backtrack_limit=5000)
    fault = Fault(nl.net_id("a[0]"), 0)
    result = engine.generate(fault)
    assert result.detected
    assert result.decisions > 0
    assert result.backtracks >= 0


def test_guided_engine_accepts_shared_analysis():
    """Passing a precomputed TestabilityAnalysis skips the lazy one."""
    from repro.analysis.testability import analyze_testability
    nl = make_addsub(6)
    analysis = analyze_testability(nl)
    engine = Podem(nl, guided=True, analysis=analysis)
    assert engine.analysis is analysis
    fault = Fault(nl.net_id("a[0]"), 0)
    result = engine.generate(fault)
    assert result.detected
    assert verify_pattern(nl, fault, result)


def test_target_random_resistant_guided():
    nl = make_multiplier(8, 18)
    resistant = find_random_resistant(nl, n_patterns=4096)
    targeted = target_random_resistant(nl, resistant[:6],
                                       backtrack_limit=2000, guided=True)
    for t in targeted:
        assert t.result.status in ("detected", "untestable", "aborted")
        if t.result.detected:
            assert verify_pattern(nl, t.fault, t.result)


def test_podem_rejects_sequential():
    b = NetlistBuilder("seq")
    a = b.input("a")
    q = b.dff(a)
    b.output(q)
    with pytest.raises(ValueError):
        Podem(b.finish())


def test_podem_proves_redundancy():
    """a AND NOT a == 0: the output sa0 is untestable."""
    b = NetlistBuilder("red")
    a = b.input("a")
    out = b.and_(a, b.not_(a))
    b.output(out)
    nl = b.finish()
    result = Podem(nl).generate(Fault(out, 0))
    assert result.status == "untestable"
    result = Podem(nl).generate(Fault(out, 1))
    assert result.detected


def test_pattern_words_requires_detection():
    nl = make_addsub(2)
    engine = Podem(nl)
    result = engine.generate(Fault(nl.net_id("a[0]"), 0))
    assert result.detected
    with pytest.raises(ValueError):
        from repro.atpg.podem import PodemResult
        PodemResult((), None, "aborted", 0).pattern_words(nl)


# ----------------------------------------------------------------------
# Unrolling
# ----------------------------------------------------------------------
def toggler():
    """1-bit toggle flip-flop with enable."""
    b = NetlistBuilder("toggle")
    en = b.input("en")
    d = b.net("d")
    q = b.dff(d, name="q")
    b.netlist.add_bus("q", [q])
    from repro.logic.gates import GateType
    b.netlist.add_gate(GateType.XOR, d, (q, en))
    b.output(q)
    return b.finish()


def test_unroll_structure():
    nl = toggler()
    unrolled = unroll(nl, 3)
    assert unrolled.netlist.dffs == []
    assert len(unrolled.netlist.inputs) == 3   # en per frame
    assert len(unrolled.netlist.outputs) == 3  # q per frame


def test_unroll_semantics():
    """Unrolled evaluation equals stepping the sequential netlist."""
    from repro.logic.sequential import SequentialSimulator
    from repro.logic.simulator import CombSimulator
    nl = toggler()
    unrolled = unroll(nl, 4)
    comb = CombSimulator(unrolled.netlist)
    for stimulus in ([1, 1, 0, 1], [0, 1, 1, 1], [1, 0, 0, 0]):
        seq = SequentialSimulator(nl)
        expected = seq.run_sequence({"en": stimulus}, output_bus="q")
        inputs = {}
        for frame, bit in enumerate(stimulus):
            inputs[unrolled.frame_bus(frame, "en")[0]] = bit
        values = comb.run(inputs)
        got = [values[unrolled.frame_bus(frame, "q")[0]]
               for frame in range(4)]
        assert got == expected


def test_unroll_validates_frames():
    with pytest.raises(ValueError):
        unroll(toggler(), 0)


def test_sequential_atpg_detects_toggler_fault():
    """A stuck toggle output is found by multi-frame PODEM and confirmed
    by sequential fault simulation."""
    nl = toggler()
    unrolled = unroll(nl, 3)
    engine = Podem(unrolled.netlist)
    fault = Fault(nl.net_id("q"), 0)
    result = engine.generate_multi(unrolled.fault_sites(fault))
    assert result.detected
    stimulus = []
    for frame in range(3):
        net = unrolled.frame_bus(frame, "en")[0]
        stimulus.append(result.pattern.get(net, 0))
    seq_result = SeqFaultSimulator(nl).run_sequence(
        {"en": stimulus}, faults=[fault]
    )
    assert seq_result.first_detect_cycle[fault] is not None


# ----------------------------------------------------------------------
# Random-resistant flow
# ----------------------------------------------------------------------
def test_find_random_resistant_shrinks_with_patterns():
    nl = make_multiplier(8, 18)
    few = find_random_resistant(nl, n_patterns=64)
    many = find_random_resistant(nl, n_patterns=2048)
    assert len(many) <= len(few)


def test_target_random_resistant_statuses():
    nl = make_multiplier(8, 18)
    resistant = find_random_resistant(nl, n_patterns=4096)
    targeted = target_random_resistant(nl, resistant[:6],
                                       backtrack_limit=2000)
    for t in targeted:
        assert t.result.status in ("detected", "untestable", "aborted")
        if t.result.detected:
            assert verify_pattern(nl, t.fault, t.result)
